//! Columnar action-log store.
//!
//! The log is kept "sorted, first by action and then by time" exactly as
//! Algorithm 2 requires, in struct-of-arrays layout: one pass over an
//! action's tuples is a contiguous scan. Action ids are densified at build
//! time (the original external id is retained for provenance, e.g. across
//! train/test splits).

use cdim_util::HeapSize;

/// User identifier — the same dense id space as the social graph's nodes.
pub type UserId = u32;

/// Dense action identifier (`0..num_actions` within one [`ActionLog`]).
pub type ActionId = u32;

/// Event time. Continuous (real-world logs are not round-based); must be
/// finite.
pub type Timestamp = f64;

/// One `(user, action, time)` record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActionTuple {
    /// Acting user.
    pub user: UserId,
    /// Dense action id.
    pub action: ActionId,
    /// When the user performed the action.
    pub time: Timestamp,
}

/// Immutable, action-partitioned log of `(user, action, time)` tuples.
///
/// Invariants (enforced by [`ActionLogBuilder`]):
/// * each user performs each action at most once (earliest record wins);
/// * tuples of one action are contiguous and sorted by `(time, user)`;
/// * all timestamps are finite.
///
/// ```
/// use cdim_actionlog::ActionLogBuilder;
///
/// let mut b = ActionLogBuilder::new(3);
/// b.push(0, 7, 1.0); // user 0 performed action 7 at t = 1
/// b.push(1, 7, 2.5);
/// b.push(0, 9, 0.5);
/// let log = b.build();
///
/// assert_eq!(log.num_actions(), 2);        // ids densified: 7 → 0, 9 → 1
/// assert_eq!(log.users_of(0), &[0, 1]);    // chronological order
/// assert_eq!(log.actions_performed_by(0), 2); // A_u
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ActionLog {
    num_users: usize,
    users: Vec<UserId>,
    times: Vec<Timestamp>,
    /// `offsets[a]..offsets[a+1]` indexes action `a`'s slice.
    offsets: Vec<usize>,
    /// Dense id → external id of the source dataset.
    external_ids: Vec<u32>,
    /// `A_u` — number of actions performed by each user.
    actions_per_user: Vec<u32>,
}

impl ActionLog {
    /// Number of users in the id space (not all need appear in the log).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of distinct actions (= propagation traces).
    #[inline]
    pub fn num_actions(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of tuples.
    #[inline]
    pub fn num_tuples(&self) -> usize {
        self.users.len()
    }

    /// Iterator over dense action ids.
    #[inline]
    pub fn actions(&self) -> impl Iterator<Item = ActionId> + '_ {
        0..self.num_actions() as ActionId
    }

    /// The users of action `a` in chronological order.
    #[inline]
    pub fn users_of(&self, a: ActionId) -> &[UserId] {
        &self.users[self.range(a)]
    }

    /// The timestamps of action `a`, parallel to [`Self::users_of`].
    #[inline]
    pub fn times_of(&self, a: ActionId) -> &[Timestamp] {
        &self.times[self.range(a)]
    }

    /// Number of users who performed action `a` (the *propagation size*).
    #[inline]
    pub fn action_size(&self, a: ActionId) -> usize {
        self.range(a).len()
    }

    /// `A_u`: how many actions user `u` performed.
    #[inline]
    pub fn actions_performed_by(&self, u: UserId) -> u32 {
        self.actions_per_user[u as usize]
    }

    /// Per-user action counts (`A_u` for all `u`).
    #[inline]
    pub fn actions_per_user(&self) -> &[u32] {
        &self.actions_per_user
    }

    /// External (source-dataset) id of dense action `a`.
    #[inline]
    pub fn external_id(&self, a: ActionId) -> u32 {
        self.external_ids[a as usize]
    }

    /// Iterates all tuples in (action, time, user) order.
    pub fn tuples(&self) -> impl Iterator<Item = ActionTuple> + '_ {
        self.actions().flat_map(move |a| {
            let range = self.range(a);
            range.map(move |i| ActionTuple { user: self.users[i], action: a, time: self.times[i] })
        })
    }

    /// Time at which `u` performed `a`, if it did (linear in action size —
    /// callers that need many lookups should build their own index).
    pub fn time_of(&self, u: UserId, a: ActionId) -> Option<Timestamp> {
        let range = self.range(a);
        self.users[range.clone()].iter().position(|&x| x == u).map(|i| self.times[range.start + i])
    }

    /// Returns the same log over a wider user universe (`num_users` ≥ the
    /// current universe): ids gain headroom, `A_u` of the new users is 0.
    /// A log built with [`ActionLogBuilder::growing`] knows only the
    /// largest user it has *seen*; widening aligns it with the universe an
    /// external artifact pins — typically the social graph's node count —
    /// before the two are combined.
    ///
    /// # Panics
    /// Panics if `num_users` is smaller than the current universe
    /// (shrinking would orphan recorded tuples).
    pub fn widen_users(mut self, num_users: usize) -> ActionLog {
        assert!(
            num_users >= self.num_users,
            "cannot shrink the user universe from {} to {num_users}",
            self.num_users
        );
        self.num_users = num_users;
        self.actions_per_user.resize(num_users, 0);
        self
    }

    /// Restricts the log to the given dense action ids (in the given
    /// order), producing a new log with re-densified ids. External ids are
    /// carried over so provenance survives.
    pub fn project_actions(&self, keep: &[ActionId]) -> ActionLog {
        let mut builder = ActionLogBuilder::new(self.num_users);
        for (new_id, &a) in keep.iter().enumerate() {
            let range = self.range(a);
            for i in range {
                builder.push_with_external(
                    self.users[i],
                    new_id as u32,
                    self.external_ids[a as usize],
                    self.times[i],
                );
            }
        }
        builder.build()
    }

    /// Truncates the log to approximately the first `max_tuples` tuples in
    /// action order, keeping whole actions (the scalability experiments
    /// subsample training tuples by whole propagation traces, Fig 8/9).
    pub fn take_tuples(&self, max_tuples: usize) -> ActionLog {
        let mut keep = Vec::new();
        let mut total = 0usize;
        for a in self.actions() {
            let size = self.action_size(a);
            if total + size > max_tuples && !keep.is_empty() {
                break;
            }
            keep.push(a);
            total += size;
            if total >= max_tuples {
                break;
            }
        }
        self.project_actions(&keep)
    }

    #[inline]
    fn range(&self, a: ActionId) -> std::ops::Range<usize> {
        self.offsets[a as usize]..self.offsets[a as usize + 1]
    }
}

impl HeapSize for ActionLog {
    fn heap_bytes(&self) -> usize {
        self.users.heap_bytes()
            + self.times.heap_bytes()
            + self.offsets.heap_bytes()
            + self.external_ids.heap_bytes()
            + self.actions_per_user.heap_bytes()
    }
}

/// Why [`ActionLogBuilder::try_push`] rejected a tuple.
///
/// Non-finite times are the dangerous case: `"NaN"` and `"inf"` parse
/// fine via `f64::from_str`, but a NaN timestamp has no total order, so
/// admitting one would silently corrupt the chronological-order invariant
/// every downstream scan relies on (`build` sorts with `partial_cmp`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LogBuildError {
    /// The timestamp was NaN or ±infinity.
    NonFiniteTime {
        /// Acting user.
        user: UserId,
        /// External action id.
        action: u32,
        /// The offending timestamp.
        time: f64,
    },
    /// The user id does not fit the declared universe.
    UserOutOfRange {
        /// The offending user id.
        user: UserId,
        /// Size of the user universe the builder was created with.
        num_users: usize,
    },
}

impl std::fmt::Display for LogBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogBuildError::NonFiniteTime { user, action, time } => {
                write!(f, "non-finite timestamp {time} for user {user} on action {action}")
            }
            LogBuildError::UserOutOfRange { user, num_users } => {
                write!(f, "user {user} out of range for {num_users} users")
            }
        }
    }
}

impl std::error::Error for LogBuildError {}

/// Accumulates raw tuples and produces a sanitized [`ActionLog`].
#[derive(Clone, Debug)]
pub struct ActionLogBuilder {
    num_users: usize,
    /// Auto-grow the universe instead of rejecting unseen user ids.
    growing: bool,
    // (external_action, time, user) triples; external ids are densified at
    // build time in ascending order.
    raw: Vec<(u32, Timestamp, UserId)>,
    external_override: Vec<(u32, u32)>, // (dense_hint, external) when projecting
}

impl ActionLogBuilder {
    /// Starts a builder over a universe of `num_users` users.
    pub fn new(num_users: usize) -> Self {
        ActionLogBuilder {
            num_users,
            growing: false,
            raw: Vec::new(),
            external_override: Vec::new(),
        }
    }

    /// Starts a builder with an auto-growing user universe: every pushed
    /// user id is admitted and the universe expands to `max id + 1`.
    ///
    /// This is the streaming-ingest mode — a live log introduces user ids
    /// the consumer has never seen, and requiring `num_users` upfront
    /// would force a pre-scan of a file that is still being written. The
    /// built log's universe is the largest id actually seen; widen it to
    /// an externally pinned universe (the graph's node count) with
    /// [`ActionLog::widen_users`] before combining the two.
    ///
    /// Timestamp validation is unchanged: only the user-range check is
    /// relaxed, and only because the range is what's being discovered.
    pub fn growing() -> Self {
        ActionLogBuilder {
            num_users: 0,
            growing: true,
            raw: Vec::new(),
            external_override: Vec::new(),
        }
    }

    /// The current user universe (grows as tuples arrive in
    /// [`growing`](Self::growing) mode).
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Adds a tuple. `action` is an arbitrary external id.
    ///
    /// # Panics
    /// Panics if `user` is out of range or `time` is not finite. Use
    /// [`Self::try_push`] where malformed records must surface as values
    /// (e.g. when ingesting untrusted files).
    pub fn push(&mut self, user: UserId, action: u32, time: Timestamp) {
        if let Err(e) = self.try_push(user, action, time) {
            panic!("{e}");
        }
    }

    /// Fallible variant of [`Self::push`]: rejects out-of-range users and
    /// non-finite timestamps with a typed [`LogBuildError`] instead of
    /// panicking. On error the builder is unchanged.
    pub fn try_push(
        &mut self,
        user: UserId,
        action: u32,
        time: Timestamp,
    ) -> Result<(), LogBuildError> {
        // Time first: a rejected tuple must leave the builder unchanged,
        // including the auto-grown universe below.
        if !time.is_finite() {
            return Err(LogBuildError::NonFiniteTime { user, action, time });
        }
        if (user as usize) >= self.num_users {
            if !self.growing {
                return Err(LogBuildError::UserOutOfRange { user, num_users: self.num_users });
            }
            self.num_users = user as usize + 1;
        }
        self.raw.push((action, time, user));
        Ok(())
    }

    /// Adds a tuple whose dense id is pre-assigned (`action`) while keeping
    /// a distinct external provenance id. Used by projections.
    pub(crate) fn push_with_external(
        &mut self,
        user: UserId,
        action: u32,
        external: u32,
        time: Timestamp,
    ) {
        self.push(user, action, time);
        self.external_override.push((action, external));
    }

    /// Number of raw tuples buffered so far.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether no tuples have been added.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Finalizes the log: sorts by (action, time, user), densifies action
    /// ids, and keeps only the earliest record per (user, action).
    pub fn build(mut self) -> ActionLog {
        self.raw.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).expect("finite times")).then(a.2.cmp(&b.2))
        });

        let mut users = Vec::with_capacity(self.raw.len());
        let mut times = Vec::with_capacity(self.raw.len());
        let mut offsets = vec![0usize];
        let mut external_ids = Vec::new();
        let mut actions_per_user = vec![0u32; self.num_users];
        let mut seen_in_action: Vec<UserId> = Vec::new();

        let mut i = 0;
        while i < self.raw.len() {
            let ext = self.raw[i].0;
            seen_in_action.clear();
            while i < self.raw.len() && self.raw[i].0 == ext {
                let (_, t, u) = self.raw[i];
                // Earliest record wins: records are time-sorted, so a user
                // already seen in this action is a duplicate.
                if !seen_in_action.contains(&u) {
                    seen_in_action.push(u);
                    users.push(u);
                    times.push(t);
                    actions_per_user[u as usize] += 1;
                }
                i += 1;
            }
            offsets.push(users.len());
            external_ids.push(ext);
        }

        // Apply external-id overrides (projection provenance).
        if !self.external_override.is_empty() {
            self.external_override.sort_unstable();
            self.external_override.dedup();
            for (dense, ext) in self.external_override {
                if (dense as usize) < external_ids.len() {
                    external_ids[dense as usize] = ext;
                }
            }
        }

        ActionLog {
            num_users: self.num_users,
            users,
            times,
            offsets,
            external_ids,
            actions_per_user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_log() -> ActionLog {
        let mut b = ActionLogBuilder::new(5);
        b.push(0, 10, 1.0);
        b.push(1, 10, 2.0);
        b.push(2, 10, 3.0);
        b.push(3, 20, 1.5);
        b.push(0, 20, 2.5);
        b.build()
    }

    #[test]
    fn shape_and_ordering() {
        let log = small_log();
        assert_eq!(log.num_actions(), 2);
        assert_eq!(log.num_tuples(), 5);
        assert_eq!(log.users_of(0), &[0, 1, 2]);
        assert_eq!(log.times_of(0), &[1.0, 2.0, 3.0]);
        assert_eq!(log.users_of(1), &[3, 0]);
        assert_eq!(log.external_id(0), 10);
        assert_eq!(log.external_id(1), 20);
    }

    #[test]
    fn au_counts() {
        let log = small_log();
        assert_eq!(log.actions_performed_by(0), 2);
        assert_eq!(log.actions_performed_by(1), 1);
        assert_eq!(log.actions_performed_by(4), 0);
    }

    #[test]
    fn duplicate_user_action_keeps_earliest() {
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 5, 9.0);
        b.push(0, 5, 3.0);
        b.push(1, 5, 4.0);
        let log = b.build();
        assert_eq!(log.num_tuples(), 2);
        assert_eq!(log.time_of(0, 0), Some(3.0));
    }

    #[test]
    fn time_of_missing_user() {
        let log = small_log();
        assert_eq!(log.time_of(4, 0), None);
    }

    #[test]
    fn tuples_iterate_in_action_then_time_order() {
        let log = small_log();
        let ts: Vec<(u32, u32)> = log.tuples().map(|t| (t.action, t.user)).collect();
        assert_eq!(ts, vec![(0, 0), (0, 1), (0, 2), (1, 3), (1, 0)]);
    }

    #[test]
    fn project_actions_redensifies_and_keeps_provenance() {
        let log = small_log();
        let projected = log.project_actions(&[1]);
        assert_eq!(projected.num_actions(), 1);
        assert_eq!(projected.users_of(0), &[3, 0]);
        assert_eq!(projected.external_id(0), 20);
        assert_eq!(projected.actions_performed_by(0), 1);
        assert_eq!(projected.actions_performed_by(1), 0);
    }

    #[test]
    fn take_tuples_keeps_whole_actions() {
        let log = small_log();
        let t = log.take_tuples(3);
        assert_eq!(t.num_actions(), 1);
        assert_eq!(t.num_tuples(), 3);
        let t4 = log.take_tuples(4);
        // Second action (2 tuples) would exceed 4 only partially; whole
        // actions only, so we stop at 3 tuples.
        assert_eq!(t4.num_tuples(), 3);
        let all = log.take_tuples(100);
        assert_eq!(all.num_tuples(), 5);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_time() {
        let mut b = ActionLogBuilder::new(1);
        b.push(0, 0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_user() {
        let mut b = ActionLogBuilder::new(1);
        b.push(3, 0, 1.0);
    }

    #[test]
    fn try_push_rejects_bad_tuples_as_values() {
        let mut b = ActionLogBuilder::new(2);
        // NaN != NaN, so match structurally rather than with assert_eq!.
        assert!(matches!(
            b.try_push(0, 7, f64::NAN),
            Err(LogBuildError::NonFiniteTime { user: 0, action: 7, time }) if time.is_nan()
        ));
        assert_eq!(
            b.try_push(1, 7, f64::INFINITY),
            Err(LogBuildError::NonFiniteTime { user: 1, action: 7, time: f64::INFINITY })
        );
        assert_eq!(
            b.try_push(1, 7, f64::NEG_INFINITY),
            Err(LogBuildError::NonFiniteTime { user: 1, action: 7, time: f64::NEG_INFINITY })
        );
        assert_eq!(
            b.try_push(5, 7, 1.0),
            Err(LogBuildError::UserOutOfRange { user: 5, num_users: 2 })
        );
        // Rejected tuples leave the builder untouched; good ones land.
        assert!(b.is_empty());
        assert_eq!(b.try_push(1, 7, 1.0), Ok(()));
        let log = b.build();
        assert_eq!(log.num_tuples(), 1);
        assert_eq!(log.time_of(1, 0), Some(1.0));
    }

    #[test]
    fn build_error_messages_name_the_problem() {
        let nan = LogBuildError::NonFiniteTime { user: 3, action: 9, time: f64::NAN };
        assert!(nan.to_string().contains("non-finite"));
        assert!(nan.to_string().contains("action 9"));
        let oor = LogBuildError::UserOutOfRange { user: 8, num_users: 4 };
        assert!(oor.to_string().contains("out of range"));
    }

    #[test]
    fn growing_builder_admits_unseen_users() {
        let mut b = ActionLogBuilder::growing();
        assert_eq!(b.num_users(), 0);
        b.push(7, 0, 1.0);
        b.push(2, 0, 2.0);
        assert_eq!(b.num_users(), 8);
        // Still rejects what fixed mode rejects for *values*, not range.
        assert!(matches!(b.try_push(9, 0, f64::NAN), Err(LogBuildError::NonFiniteTime { .. })));
        let log = b.build();
        assert_eq!(log.num_users(), 8);
        assert_eq!(log.actions_performed_by(7), 1);
        assert_eq!(log.actions_performed_by(3), 0);
    }

    #[test]
    fn fixed_builder_still_rejects_out_of_range_users() {
        // Regression guard for the auto-growing mode: the fixed-universe
        // constructor must keep rejecting ids beyond the declared range.
        let mut b = ActionLogBuilder::new(4);
        assert_eq!(
            b.try_push(4, 0, 1.0),
            Err(LogBuildError::UserOutOfRange { user: 4, num_users: 4 })
        );
        assert!(b.is_empty());
    }

    #[test]
    fn widen_users_adds_headroom() {
        let mut b = ActionLogBuilder::growing();
        b.push(1, 5, 1.0);
        b.push(0, 5, 2.0);
        let log = b.build().widen_users(6);
        assert_eq!(log.num_users(), 6);
        assert_eq!(log.num_tuples(), 2);
        assert_eq!(log.actions_performed_by(5), 0);
        assert_eq!(log.actions_per_user().len(), 6);
        // Widening to the current size is a no-op.
        let same = log.clone().widen_users(6);
        assert_eq!(same, log);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn widen_users_rejects_shrinking() {
        small_log().widen_users(2);
    }

    #[test]
    fn empty_log() {
        let log = ActionLogBuilder::new(4).build();
        assert_eq!(log.num_actions(), 0);
        assert_eq!(log.num_tuples(), 0);
        assert_eq!(log.tuples().count(), 0);
    }

    #[test]
    fn simultaneous_times_are_kept_and_user_ordered() {
        let mut b = ActionLogBuilder::new(3);
        b.push(2, 0, 1.0);
        b.push(1, 0, 1.0);
        let log = b.build();
        assert_eq!(log.users_of(0), &[1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Build then iterate: every surviving tuple appears in the raw
        /// input, each (user, action) pair survives exactly once with its
        /// minimum time, and per-action slices are time-sorted.
        #[test]
        fn builder_invariants(
            raw in proptest::collection::vec(
                (0u32..8, 0u32..6, 0u64..100), 0..120)
        ) {
            let mut b = ActionLogBuilder::new(8);
            for &(u, a, t) in &raw {
                b.push(u, a, t as f64);
            }
            let log = b.build();

            // Expected: min time per (user, external action).
            let mut expected: std::collections::BTreeMap<(u32, u32), f64> =
                std::collections::BTreeMap::new();
            for &(u, a, t) in &raw {
                let e = expected.entry((a, u)).or_insert(f64::INFINITY);
                *e = e.min(t as f64);
            }
            prop_assert_eq!(log.num_tuples(), expected.len());

            for a in log.actions() {
                let times = log.times_of(a);
                for w in times.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
                let ext = log.external_id(a);
                for (i, &u) in log.users_of(a).iter().enumerate() {
                    prop_assert_eq!(expected.get(&(ext, u)).copied(), Some(times[i]));
                }
            }

            // A_u counts match.
            for u in 0..8u32 {
                let count = expected.keys().filter(|&&(_, ku)| ku == u).count();
                prop_assert_eq!(log.actions_performed_by(u) as usize, count);
            }
        }
    }
}
