//! Train/test splitting of propagation traces.
//!
//! §3: "we sorted the propagation traces based on their size and put every
//! fifth propagation in this ranking in the test set", yielding an 80/20
//! split in which both sets keep similar size distributions, and each trace
//! falls *entirely* into one side.

use crate::log::{ActionId, ActionLog};

/// The two halves of a split, plus the dense-action-id provenance.
#[derive(Clone, Debug)]
pub struct TrainTestSplit {
    /// Training log (≈80% of traces).
    pub train: ActionLog,
    /// Test log (≈20% of traces).
    pub test: ActionLog,
    /// Dense ids (in the source log) that went into `train`.
    pub train_actions: Vec<ActionId>,
    /// Dense ids (in the source log) that went into `test`.
    pub test_actions: Vec<ActionId>,
}

/// Splits `log` by the paper's every-`stride`-th-by-size rule.
///
/// With `stride = 5` this is the paper's 80/20 split. Traces are ranked by
/// descending size (ties broken by action id for determinism); ranks
/// `stride-1, 2*stride-1, …` go to the test set.
pub fn train_test_split(log: &ActionLog, stride: usize) -> TrainTestSplit {
    assert!(stride >= 2, "stride must be at least 2");
    let mut ranked: Vec<ActionId> = log.actions().collect();
    ranked.sort_by(|&a, &b| log.action_size(b).cmp(&log.action_size(a)).then(a.cmp(&b)));

    let mut train_actions = Vec::new();
    let mut test_actions = Vec::new();
    for (rank, &a) in ranked.iter().enumerate() {
        if (rank + 1) % stride == 0 {
            test_actions.push(a);
        } else {
            train_actions.push(a);
        }
    }
    // Keep source ordering inside each side so projected logs stay stable.
    train_actions.sort_unstable();
    test_actions.sort_unstable();

    TrainTestSplit {
        train: log.project_actions(&train_actions),
        test: log.project_actions(&test_actions),
        train_actions,
        test_actions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ActionLogBuilder;

    /// Builds a log with 10 actions of sizes 10, 9, …, 1.
    fn graded_log() -> ActionLog {
        let mut b = ActionLogBuilder::new(16);
        for a in 0..10u32 {
            let size = 10 - a as usize;
            for i in 0..size {
                b.push(i as u32, a, i as f64);
            }
        }
        b.build()
    }

    #[test]
    fn eighty_twenty_partition() {
        let log = graded_log();
        let split = train_test_split(&log, 5);
        assert_eq!(split.train.num_actions(), 8);
        assert_eq!(split.test.num_actions(), 2);
        assert_eq!(split.train.num_tuples() + split.test.num_tuples(), log.num_tuples());
    }

    #[test]
    fn every_fifth_by_size_goes_to_test() {
        let log = graded_log();
        let split = train_test_split(&log, 5);
        // Sizes descending are 10..1 for actions 0..9; ranks 5 and 10 are
        // sizes 6 (action 4) and 1 (action 9).
        assert_eq!(split.test_actions, vec![4, 9]);
    }

    #[test]
    fn traces_stay_whole() {
        let log = graded_log();
        let split = train_test_split(&log, 5);
        for (side, actions) in
            [(&split.train, &split.train_actions), (&split.test, &split.test_actions)]
        {
            for (new_id, &old_id) in actions.iter().enumerate() {
                assert_eq!(
                    side.users_of(new_id as u32),
                    log.users_of(old_id),
                    "trace must survive unchanged"
                );
            }
        }
    }

    #[test]
    fn size_distributions_are_similar() {
        let log = graded_log();
        let split = train_test_split(&log, 5);
        let avg = |l: &ActionLog| l.num_tuples() as f64 / l.num_actions() as f64;
        // Mean sizes should not diverge wildly (stratified split).
        assert!((avg(&split.train) - avg(&split.test)).abs() < 3.0);
    }

    #[test]
    fn stride_two_is_half_half() {
        let log = graded_log();
        let split = train_test_split(&log, 2);
        assert_eq!(split.train.num_actions(), 5);
        assert_eq!(split.test.num_actions(), 5);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn rejects_stride_one() {
        let log = graded_log();
        let _ = train_test_split(&log, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::log::ActionLogBuilder;
    use proptest::prelude::*;

    proptest! {
        /// The split is a partition: every action lands on exactly one
        /// side, whole, and tuple counts are conserved — for arbitrary
        /// logs and strides.
        #[test]
        fn split_is_a_partition(
            events in proptest::collection::vec((0u32..10, 0u32..12, 0u64..50), 1..120),
            stride in 2usize..7,
        ) {
            let mut b = ActionLogBuilder::new(10);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let split = train_test_split(&log, stride);

            prop_assert_eq!(
                split.train.num_actions() + split.test.num_actions(),
                log.num_actions()
            );
            prop_assert_eq!(
                split.train.num_tuples() + split.test.num_tuples(),
                log.num_tuples()
            );
            // Disjoint action assignment, traces preserved verbatim.
            let mut seen: std::collections::HashSet<u32> = Default::default();
            for (&old, side, new) in split
                .train_actions
                .iter()
                .enumerate()
                .map(|(i, a)| (a, &split.train, i as u32))
                .chain(
                    split
                        .test_actions
                        .iter()
                        .enumerate()
                        .map(|(i, a)| (a, &split.test, i as u32)),
                )
            {
                prop_assert!(seen.insert(old), "action {old} on both sides");
                prop_assert_eq!(side.users_of(new), log.users_of(old));
                prop_assert_eq!(side.times_of(new), log.times_of(old));
            }
            // Test side holds floor(n / stride) traces by construction.
            prop_assert_eq!(split.test.num_actions(), log.num_actions() / stride);
        }
    }
}
