//! `tail -f` for the action-log TSV — poll-based, partial-line safe.
//!
//! The follower owns a byte offset into the file, always at a record
//! boundary. Each [`poll`](LogFollower::poll) re-reads from that offset
//! and consumes only complete `\n`-terminated records: a producer that
//! was interrupted mid-record costs nothing — the partial tail is left in
//! the file and re-read once its newline arrives. A file that *shrinks*
//! (rotation, truncation) is never silently re-synchronized; it surfaces
//! as [`IngestError::LogTruncated`] and the operator chooses a recovery.
//!
//! Parsing goes through the shared [`TupleDecoder`], so the TSV grammar
//! and its line-numbered diagnostics are exactly the ones offline loading
//! uses.

use crate::error::IngestError;
use cdim_actionlog::{StorageError, TupleDecoder};
use std::fs::File;
use std::io::{ErrorKind, Read, Seek, SeekFrom};
use std::path::PathBuf;

/// One parsed record with its position in the file — the position is what
/// lets the batcher hand out a durable resume point that re-covers
/// records not yet folded into the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Record {
    /// Acting user.
    pub user: u32,
    /// External action id.
    pub action: u32,
    /// Event time (finiteness is validated downstream by the builder).
    pub time: f64,
    /// Byte offset of the first byte of this record's line.
    pub offset: u64,
    /// 1-based line number of this record.
    pub line: u64,
}

/// Bytes consumed per poll at most: a cold start over a large backlog
/// costs memory proportional to one poll window, never the whole file
/// (the rest arrives on the following polls).
pub const MAX_POLL_BYTES: u64 = 8 << 20;

/// Poll-based tailer over an append-only TSV action log.
#[derive(Debug)]
pub struct LogFollower {
    path: PathBuf,
    /// Next unread byte; always at a line boundary.
    offset: u64,
    /// Complete lines consumed (== lines before `offset`).
    lines: u64,
    decoder: TupleDecoder,
    poll_cap: u64,
    /// File length observed by the most recent poll — what
    /// [`lag_bytes`](Self::lag_bytes) measures the offset against.
    seen_len: u64,
    /// A parse failure is terminal: the offset is parked at the bad
    /// line and every later poll re-raises this diagnostic, so a caller
    /// that ignores the error can neither skip nor double-read records.
    pending_parse: Option<(usize, String)>,
}

impl LogFollower {
    /// Follows `path` from the beginning. The file need not exist yet —
    /// polls before the producer's first write are empty, not errors.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        Self::resume(path, 0, 0)
    }

    /// Resumes at a checkpointed position: byte `offset` with `lines`
    /// lines already consumed (diagnostics keep true line numbers).
    pub fn resume(path: impl Into<PathBuf>, offset: u64, lines: u64) -> Self {
        LogFollower {
            path: path.into(),
            offset,
            lines,
            decoder: TupleDecoder::resume(lines as usize),
            poll_cap: MAX_POLL_BYTES,
            seen_len: 0,
            pending_parse: None,
        }
    }

    /// Shrinks the poll window (tests exercise the multi-poll backlog
    /// path without multi-megabyte fixtures).
    #[cfg(test)]
    fn with_poll_cap(mut self, cap: u64) -> Self {
        self.poll_cap = cap.max(1);
        self
    }

    /// The byte offset of the next unread record.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Complete lines consumed so far.
    pub fn lines_consumed(&self) -> u64 {
        self.lines
    }

    /// Bytes between the consumed offset and the end of the file as of
    /// the most recent poll — how far the follower is behind the
    /// producer. Zero when caught up (or before the first poll).
    pub fn lag_bytes(&self) -> u64 {
        self.seen_len.saturating_sub(self.offset)
    }

    /// One poll: the complete records appended since the last poll (at
    /// most [`MAX_POLL_BYTES`] worth — a larger backlog spans several
    /// polls), in file order. Returns an empty vector when nothing (or
    /// only a partial line) arrived. Comments and blank lines are
    /// consumed but yield no records.
    ///
    /// The offset advances per successfully decoded line, so a parse
    /// failure mid-chunk still delivers every record before it exactly
    /// once; the failure itself is raised on the *next* poll and sticks.
    pub fn poll(&mut self) -> Result<Vec<Record>, IngestError> {
        if let Some((line, message)) = &self.pending_parse {
            return Err(IngestError::Parse(StorageError::Parse {
                line: *line,
                message: message.clone(),
            }));
        }
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            // The producer may not have created the log yet.
            Err(e) if e.kind() == ErrorKind::NotFound => {
                self.seen_len = self.offset;
                return Ok(Vec::new());
            }
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        self.seen_len = len;
        if len < self.offset {
            return Err(IngestError::LogTruncated { offset: self.offset, len });
        }
        if len == self.offset {
            return Ok(Vec::new());
        }

        // Read exactly the bytes the length check promised (capped) —
        // the file may keep growing underneath; anything past `len`
        // waits for the next poll.
        let want = (len - self.offset).min(self.poll_cap);
        file.seek(SeekFrom::Start(self.offset))?;
        let mut chunk = Vec::with_capacity(want as usize);
        file.take(want).read_to_end(&mut chunk)?;

        // Only bytes up to the last newline are complete records.
        let Some(last_nl) = chunk.iter().rposition(|&b| b == b'\n') else {
            if self.offset + want < len {
                // A full poll window without a single newline is not a
                // torn tail — it is a record longer than the window.
                return Err(IngestError::Parse(StorageError::Parse {
                    line: self.lines as usize + 1,
                    message: format!("record exceeds the {}-byte poll window", self.poll_cap),
                }));
            }
            return Ok(Vec::new());
        };
        let complete = &chunk[..=last_nl];
        let text = std::str::from_utf8(complete).map_err(|_| {
            IngestError::Io(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("non-UTF-8 bytes in the log near offset {}", self.offset),
            ))
        })?;

        let mut records = Vec::new();
        for line in text.split_inclusive('\n') {
            match self.decoder.decode_line(line) {
                Ok(Some(raw)) => records.push(Record {
                    user: raw.user,
                    action: raw.action,
                    time: raw.time,
                    offset: self.offset,
                    line: self.decoder.lines_consumed() as u64,
                }),
                Ok(None) => {}
                Err(StorageError::Parse { line, message }) => {
                    // Park at the bad line; deliver the good prefix now
                    // and the diagnostic on every poll from here on.
                    self.pending_parse = Some((line, message));
                    return Ok(records);
                }
                Err(e) => return Err(e.into()),
            }
            self.offset += line.len() as u64;
            self.lines += 1;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::Path;

    fn tempfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdim_follower_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.tsv"))
    }

    fn append(path: &Path, data: &str) {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path).unwrap();
        f.write_all(data.as_bytes()).unwrap();
    }

    #[test]
    fn missing_file_polls_empty() {
        let path = tempfile("missing");
        std::fs::remove_file(&path).ok();
        let mut follower = LogFollower::open(&path);
        assert_eq!(follower.poll().unwrap(), Vec::new());
        assert_eq!(follower.offset(), 0);
    }

    #[test]
    fn partial_trailing_line_completes_across_polls() {
        let path = tempfile("partial");
        std::fs::remove_file(&path).ok();
        let mut follower = LogFollower::open(&path);

        // A complete record plus the torn head of the next one.
        append(&path, "0\t5\t1.0\n1\t5\t2");
        let records = follower.poll().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!((records[0].user, records[0].action, records[0].time), (0, 5, 1.0));
        assert_eq!(records[0].offset, 0);
        assert_eq!(records[0].line, 1);
        let mid_offset = follower.offset();

        // Nothing new: the torn record stays unconsumed.
        assert!(follower.poll().unwrap().is_empty());
        assert_eq!(follower.offset(), mid_offset);

        // The rest of the record (and one more) arrives; the re-read
        // stitches the torn line back together.
        append(&path, ".5\n2\t6\t0.25\n");
        let records = follower.poll().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!((records[0].user, records[0].time), (1, 2.5));
        assert_eq!(records[0].line, 2);
        assert_eq!((records[1].user, records[1].action), (2, 6));
        assert_eq!(records[1].line, 3);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let path = tempfile("truncate");
        std::fs::remove_file(&path).ok();
        append(&path, "0\t1\t1.0\n1\t1\t2.0\n");
        let mut follower = LogFollower::open(&path);
        assert_eq!(follower.poll().unwrap().len(), 2);

        // Rotation: the file is replaced by a shorter one.
        std::fs::write(&path, "9\t9\t9.0\n").unwrap();
        match follower.poll() {
            Err(IngestError::LogTruncated { offset, len }) => {
                assert_eq!(offset, 16);
                assert_eq!(len, 8);
            }
            other => panic!("expected LogTruncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_polls_and_comments_cost_nothing() {
        let path = tempfile("comments");
        std::fs::remove_file(&path).ok();
        append(&path, "# header\n\n");
        let mut follower = LogFollower::open(&path);
        assert!(follower.poll().unwrap().is_empty());
        assert_eq!(follower.lines_consumed(), 2);
        // Steady-state idle polls do not move the offset.
        let offset = follower.offset();
        for _ in 0..3 {
            assert!(follower.poll().unwrap().is_empty());
        }
        assert_eq!(follower.offset(), offset);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_record_is_the_offline_diagnostic_and_sticks() {
        let path = tempfile("malformed");
        std::fs::remove_file(&path).ok();
        append(&path, "0\t1\t1.0\nbogus line\n2\t2\t2.0\n");
        let mut follower = LogFollower::open(&path);
        // The good prefix is delivered exactly once…
        let records = follower.poll().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].user, 0);
        // …then the diagnostic is raised, and keeps being raised: the
        // bad line is neither skipped nor the good one re-read.
        for _ in 0..2 {
            match follower.poll() {
                Err(IngestError::Parse(cdim_actionlog::StorageError::Parse { line, .. })) => {
                    assert_eq!(line, 2)
                }
                other => panic!("expected a line-2 parse error, got {other:?}"),
            }
        }
        assert_eq!(follower.offset(), 8, "offset parked at the bad line");
        assert_eq!(follower.lines_consumed(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capped_poll_drains_a_backlog_across_polls() {
        let path = tempfile("capped");
        std::fs::remove_file(&path).ok();
        // Three 8-byte records, 16-byte poll window: two polls to drain.
        append(&path, "0\t1\t1.0\n1\t1\t2.0\n2\t2\t3.0\n");
        let mut follower = LogFollower::open(&path).with_poll_cap(16);
        let first = follower.poll().unwrap();
        assert_eq!(first.len(), 2);
        let second = follower.poll().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].line, 3);
        assert!(follower.poll().unwrap().is_empty());
        assert_eq!(follower.offset(), 24);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_longer_than_the_poll_window_is_a_parse_error() {
        let path = tempfile("oversized");
        std::fs::remove_file(&path).ok();
        append(&path, "0\t1\t1.00000000000\n");
        let mut follower = LogFollower::open(&path).with_poll_cap(4);
        match follower.poll() {
            Err(IngestError::Parse(cdim_actionlog::StorageError::Parse { line, message })) => {
                assert_eq!(line, 1);
                assert!(message.contains("poll window"), "{message}");
            }
            other => panic!("expected an oversized-record error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lag_bytes_tracks_distance_behind_eof() {
        let path = tempfile("lag");
        std::fs::remove_file(&path).ok();
        let mut follower = LogFollower::open(&path);
        assert_eq!(follower.lag_bytes(), 0);
        follower.poll().unwrap();
        assert_eq!(follower.lag_bytes(), 0, "a missing file is not a backlog");

        // Three 8-byte records, 16-byte window: after one poll the
        // follower knows it is one record behind.
        append(&path, "0\t1\t1.0\n1\t1\t2.0\n2\t2\t3.0\n");
        let mut capped = LogFollower::open(&path).with_poll_cap(16);
        capped.poll().unwrap();
        assert_eq!(capped.lag_bytes(), 8);
        capped.poll().unwrap();
        assert_eq!(capped.lag_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_continues_offsets_and_lines() {
        let path = tempfile("resume");
        std::fs::remove_file(&path).ok();
        append(&path, "0\t1\t1.0\n1\t1\t2.0\n");
        let mut first = LogFollower::open(&path);
        let records = first.poll().unwrap();
        assert_eq!(records.len(), 2);

        let mut resumed = LogFollower::resume(&path, first.offset(), first.lines_consumed());
        assert!(resumed.poll().unwrap().is_empty());
        append(&path, "2\t2\t0.5\n");
        let records = resumed.poll().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].line, 3);
        assert_eq!(records[0].offset, 16);
        std::fs::remove_file(&path).ok();
    }
}
