//! Ingest instrumentation: throughput, lag, batch shape, quarantine.
//!
//! The driver reports into whatever [`MetricsRegistry`] it was opened
//! with (the same one its [`cdim_serve::InfluenceService`] uses, so wire
//! op 6 and the scrape endpoint see one coherent dump):
//!
//! * `cdim_ingest_records_total` — counter, complete records read;
//! * `cdim_ingest_quarantined_total` — counter, records dead-lettered;
//! * `cdim_ingest_records_per_sec` — gauge, trailing-window throughput;
//! * `cdim_ingest_lag_bytes` — gauge, bytes the follower is behind EOF;
//! * `cdim_ingest_watermark_age_seconds` — gauge, seconds since the
//!   applied watermark last advanced (how stale the served model is);
//! * `cdim_ingest_batch_actions` — histogram, whole actions per cut
//!   batch (the batch-size distribution);
//! * `cdim_ingest_checkpoint_seconds` — histogram, wall time per
//!   checkpoint (expiry + snapshot serialisation + atomic write);
//! * `cdim_ingest_last_quarantine_reason` — info, the most recent
//!   quarantine's human-readable reason.

use cdim_obs::{Counter, Gauge, Histogram, Info, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handles into the driver's registry, resolved once at open.
pub(crate) struct IngestMetrics {
    /// Complete records read off the log.
    pub records: Arc<Counter>,
    /// Records quarantined to the dead-letter sink.
    pub quarantined: Arc<Counter>,
    /// Trailing-window read throughput.
    pub records_per_sec: Arc<Gauge>,
    /// Bytes behind the log's EOF as of the latest poll.
    pub lag_bytes: Arc<Gauge>,
    /// Seconds since the applied watermark last advanced.
    pub watermark_age: Arc<Gauge>,
    /// Whole actions per cut batch.
    pub batch_actions: Arc<Histogram>,
    /// Wall seconds per checkpoint.
    pub checkpoint_seconds: Arc<Histogram>,
    /// Most recent quarantine reason, rendered.
    pub last_quarantine: Arc<Info>,
}

impl IngestMetrics {
    /// Resolve every ingest series in `registry`.
    pub(crate) fn register(registry: &MetricsRegistry) -> Self {
        IngestMetrics {
            records: registry.counter("cdim_ingest_records_total"),
            quarantined: registry.counter("cdim_ingest_quarantined_total"),
            records_per_sec: registry.gauge("cdim_ingest_records_per_sec"),
            lag_bytes: registry.gauge("cdim_ingest_lag_bytes"),
            watermark_age: registry.gauge("cdim_ingest_watermark_age_seconds"),
            batch_actions: registry.histogram("cdim_ingest_batch_actions"),
            checkpoint_seconds: registry.histogram("cdim_ingest_checkpoint_seconds"),
            last_quarantine: registry.info("cdim_ingest_last_quarantine_reason", "reason"),
        }
    }
}

/// How much history the throughput gauge averages over.
pub(crate) const RATE_WINDOW: Duration = Duration::from_secs(5);

/// A trailing-window event counter: `record` counts, `rate` averages the
/// counts of the last [`RATE_WINDOW`] over that window's span.
#[derive(Debug)]
pub(crate) struct RateWindow {
    window: Duration,
    samples: VecDeque<(Instant, usize)>,
}

impl RateWindow {
    pub(crate) fn new(window: Duration) -> Self {
        RateWindow { window, samples: VecDeque::new() }
    }

    /// Count `n` events now (zero-count samples are dropped — idle polls
    /// cost nothing and the rate decays via `rate`'s expiry instead).
    pub(crate) fn record(&mut self, n: usize) {
        self.record_at(n, Instant::now());
    }

    pub(crate) fn record_at(&mut self, n: usize, now: Instant) {
        self.expire(now);
        if n > 0 {
            self.samples.push_back((now, n));
        }
    }

    /// Events per second over the trailing window.
    pub(crate) fn rate(&mut self) -> f64 {
        self.rate_at(Instant::now())
    }

    pub(crate) fn rate_at(&mut self, now: Instant) -> f64 {
        self.expire(now);
        let total: usize = self.samples.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        // Average over the full window span, not just the sampled span:
        // a single burst in an otherwise quiet window reads as a low
        // rate, and the rate decays to zero as samples age out.
        let base = total as f64 / self.window.as_secs_f64().max(f64::MIN_POSITIVE);
        // Once the source goes idle, decay linearly with the time since
        // the newest sample instead of holding the stale average until
        // the whole window cliff-expires: the gauge reaches exactly 0 by
        // the time the trailing window is empty.
        let newest = self.samples.back().map(|&(at, _)| at).unwrap_or(now);
        let idle = now.saturating_duration_since(newest).as_secs_f64();
        let idle_factor = (1.0 - idle / self.window.as_secs_f64().max(f64::MIN_POSITIVE)).max(0.0);
        base * idle_factor
    }

    fn expire(&mut self, now: Instant) {
        while let Some(&(at, _)) = self.samples.front() {
            if now.saturating_duration_since(at) > self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_averages_over_the_window_and_decays() {
        let mut w = RateWindow::new(Duration::from_secs(5));
        let t0 = Instant::now();
        assert_eq!(w.rate_at(t0), 0.0);
        w.record_at(100, t0);
        w.record_at(150, t0 + Duration::from_secs(1));
        // 250 events over a 5-second window.
        assert!((w.rate_at(t0 + Duration::from_secs(1)) - 50.0).abs() < 1e-9);
        // Everything aged out: back to zero.
        assert_eq!(w.rate_at(t0 + Duration::from_secs(30)), 0.0);
    }

    #[test]
    fn rate_decays_monotonically_to_zero_after_idle() {
        let mut w = RateWindow::new(Duration::from_secs(5));
        let t0 = Instant::now();
        w.record_at(500, t0);
        // 500 events over a 5-second window, read at the moment of the burst.
        assert!((w.rate_at(t0) - 100.0).abs() < 1e-9);
        // Stale reads must fall monotonically, not hold the burst average…
        let mut prev = f64::INFINITY;
        for ms in (0..=5000).step_by(250) {
            let r = w.rate_at(t0 + Duration::from_millis(ms));
            assert!(r <= prev, "rate rose while idle: {r} after {prev} at +{ms}ms");
            assert!(r <= 100.0);
            prev = r;
        }
        // …hit exactly 0 once the trailing window is empty, and stay there.
        assert_eq!(w.rate_at(t0 + Duration::from_secs(5)), 0.0);
        assert_eq!(w.rate_at(t0 + Duration::from_secs(6)), 0.0);
    }

    #[test]
    fn zero_count_samples_do_not_accumulate() {
        let mut w = RateWindow::new(RATE_WINDOW);
        for _ in 0..1000 {
            w.record(0);
        }
        assert!(w.samples.is_empty());
        assert_eq!(w.rate(), 0.0);
    }

    #[test]
    fn register_resolves_every_series() {
        let registry = MetricsRegistry::new();
        let m = IngestMetrics::register(&registry);
        m.records.add(7);
        m.last_quarantine.set("why");
        let dump = registry.dump();
        assert!(dump.counters.iter().any(|(n, v)| n == "cdim_ingest_records_total" && *v == 7));
        assert!(dump.histograms.iter().any(|(n, _)| n == "cdim_ingest_batch_actions"));
        assert!(dump.infos.iter().any(|(n, k, v)| n == "cdim_ingest_last_quarantine_reason"
            && k == "reason"
            && v == "why"));
    }
}
