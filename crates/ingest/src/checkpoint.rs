//! The restart point: a model snapshot bound to a log position.
//!
//! A follower that restarts must not rescan the log — the whole point of
//! the incremental pipeline is that training cost tracks the *delta*, not
//! the history. The checkpoint is therefore a single atomically-replaced
//! file holding everything a fresh process needs: the trained
//! [`ModelSnapshot`] (self-validating, see [`cdim_serve::snapshot`]), the
//! byte offset/line count of the first log record *not yet folded into
//! that snapshot*, and the batcher's applied watermark (the highest
//! external action id in the snapshot — snapshots store credits, not
//! external ids, so the watermark must travel alongside).
//!
//! ## Layout (version 2)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CDIMCKPT"
//! 8       4     format version (u32) = 2
//! 12      8     log byte offset (u64)
//! 20      8     log lines consumed (u64)
//! 28      8     watermark (u64): 0 = none, else external id + 1
//! 36      8     snapshot length (u64)
//! 44      …     embedded model snapshot (its own magic/CRC inside)
//! …       8     window entries (u64)
//! …       …     per entry: external id (u32), tuple count n (u32),
//!               then n × (user (u32), time (f64 bits, u64))
//! end-4   4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The window section is the sliding-window tuple buffer: one entry per
//! action still inside the served model, oldest first, holding exactly
//! the (user, time) slices the action was trained from. A restarted
//! driver needs them to rebuild expired-prefix deltas for
//! [`cdim_serve::InfluenceService::retract_delta`]; an unbounded run
//! writes zero entries. Version-1 files (no window section) still load,
//! with an empty window.
//!
//! One file, written via temp + rename: a crash leaves either the old
//! checkpoint or the new one, never a torn pair of snapshot and position.

use crate::error::IngestError;
use cdim_serve::ModelSnapshot;
use cdim_util::checksum::crc32;
use std::path::Path;

/// File magic.
pub const MAGIC: [u8; 8] = *b"CDIMCKPT";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 2;

/// One action of the sliding-window tuple buffer: the exact (user, time)
/// slices the action was trained from, keyed by its external log id.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowEntry {
    /// External action id from the log (ascending across the buffer).
    pub external: u32,
    /// Users of the action, in the trained (time, user) order.
    pub users: Vec<u32>,
    /// Activation times, parallel to `users`.
    pub times: Vec<f64>,
}

/// A resumable follower state.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The trained model at this point of the log.
    pub snapshot: ModelSnapshot,
    /// Byte offset of the first log record not covered by `snapshot`.
    pub offset: u64,
    /// Complete lines consumed up to `offset` (diagnostics continuity).
    pub lines: u64,
    /// Highest external action id folded into `snapshot`.
    pub watermark: Option<u32>,
    /// Sliding-window tuple buffer, oldest action first (empty for
    /// unbounded runs and version-1 files).
    pub window: Vec<WindowEntry>,
}

impl Checkpoint {
    /// Serializes to the version-2 container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let snap = self.snapshot.to_bytes();
        let mut out = Vec::with_capacity(56 + snap.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.lines.to_le_bytes());
        let watermark = match self.watermark {
            None => 0u64,
            Some(id) => u64::from(id) + 1,
        };
        out.extend_from_slice(&watermark.to_le_bytes());
        out.extend_from_slice(&(snap.len() as u64).to_le_bytes());
        out.extend_from_slice(&snap);
        out.extend_from_slice(&(self.window.len() as u64).to_le_bytes());
        for entry in &self.window {
            out.extend_from_slice(&entry.external.to_le_bytes());
            out.extend_from_slice(&(entry.users.len() as u32).to_le_bytes());
            for (&u, &t) in entry.users.iter().zip(&entry.times) {
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&t.to_bits().to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes and validates a checkpoint.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IngestError> {
        let header = MAGIC.len() + 4 + 8 + 8 + 8 + 8;
        if bytes.len() < header + 4 {
            return Err(IngestError::Checkpoint(format!(
                "file of {} bytes is too short to be a checkpoint",
                bytes.len()
            )));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(IngestError::Checkpoint("bad magic".into()));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(IngestError::Checkpoint(format!(
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != 1 && version != FORMAT_VERSION {
            return Err(IngestError::Checkpoint(format!(
                "unsupported checkpoint version {version} (this build reads 1..={FORMAT_VERSION})"
            )));
        }
        let offset = u64_at(12);
        let lines = u64_at(20);
        let watermark = match u64_at(28) {
            0 => None,
            id => Some(
                u32::try_from(id - 1)
                    .map_err(|_| IngestError::Checkpoint(format!("watermark {id} out of range")))?,
            ),
        };
        let snap_len = u64_at(36) as usize;
        let truncated =
            || IngestError::Checkpoint(format!("snapshot length {snap_len} overruns the file"));
        if header + snap_len + 4 > bytes.len() {
            return Err(truncated());
        }
        let snapshot = ModelSnapshot::from_bytes(&bytes[header..header + snap_len])?;
        let mut at = header + snap_len;
        let window = if version == 1 {
            Vec::new()
        } else {
            if at + 8 + 4 > bytes.len() {
                return Err(truncated());
            }
            let entries = u64_at(at) as usize;
            at += 8;
            let mut window = Vec::with_capacity(entries.min(1024));
            for _ in 0..entries {
                if at + 8 + 4 > bytes.len() {
                    return Err(truncated());
                }
                let external = u32_at(at);
                let n = u32_at(at + 4) as usize;
                at += 8;
                if at + n * 12 + 4 > bytes.len() {
                    return Err(truncated());
                }
                let mut users = Vec::with_capacity(n);
                let mut times = Vec::with_capacity(n);
                for _ in 0..n {
                    users.push(u32_at(at));
                    times.push(f64::from_bits(u64_at(at + 4)));
                    at += 12;
                }
                window.push(WindowEntry { external, users, times });
            }
            window
        };
        if at + 4 != bytes.len() {
            return Err(IngestError::Checkpoint(format!(
                "{} trailing bytes after the window section",
                bytes.len() - at - 4
            )));
        }
        Ok(Checkpoint { snapshot, offset, lines, watermark, window })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<(), IngestError> {
        let tmp = path.with_extension("ckpt_tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, IngestError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_core::{scan, CreditPolicy};
    use cdim_graph::GraphBuilder;

    fn sample() -> Checkpoint {
        let graph = GraphBuilder::new(4).edges([(0, 1), (1, 2), (0, 3)]).build();
        let mut b = ActionLogBuilder::new(4);
        b.push(0, 3, 0.0);
        b.push(1, 3, 1.0);
        b.push(2, 8, 0.5);
        let log = b.build();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        Checkpoint {
            snapshot: ModelSnapshot::from_store(store),
            offset: 1234,
            lines: 56,
            watermark: Some(8),
            window: vec![
                WindowEntry { external: 3, users: vec![0, 1], times: vec![0.0, 1.0] },
                WindowEntry { external: 8, users: vec![2], times: vec![0.5] },
            ],
        }
    }

    #[test]
    fn round_trips_bytes_and_fields() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let restored = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(restored.offset, 1234);
        assert_eq!(restored.lines, 56);
        assert_eq!(restored.watermark, Some(8));
        assert_eq!(restored.snapshot.to_bytes(), ckpt.snapshot.to_bytes());
        assert_eq!(restored.window, ckpt.window);
        assert_eq!(restored.to_bytes(), bytes);

        let fresh = Checkpoint { watermark: None, window: Vec::new(), ..ckpt };
        let restored = Checkpoint::from_bytes(&fresh.to_bytes()).unwrap();
        assert_eq!(restored.watermark, None);
        assert!(restored.window.is_empty());
    }

    #[test]
    fn version_1_files_still_load_with_an_empty_window() {
        // Rebuild a byte-exact version-1 file: same header and snapshot,
        // no window section, version field 1, fresh CRC.
        let ckpt = sample();
        let snap = ckpt.snapshot.to_bytes();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&ckpt.offset.to_le_bytes());
        v1.extend_from_slice(&ckpt.lines.to_le_bytes());
        v1.extend_from_slice(&9u64.to_le_bytes()); // watermark 8 encoded
        v1.extend_from_slice(&(snap.len() as u64).to_le_bytes());
        v1.extend_from_slice(&snap);
        let crc = crc32(&v1);
        v1.extend_from_slice(&crc.to_le_bytes());

        let restored = Checkpoint::from_bytes(&v1).unwrap();
        assert_eq!(restored.offset, ckpt.offset);
        assert_eq!(restored.watermark, Some(8));
        assert_eq!(restored.snapshot.to_bytes(), snap);
        assert!(restored.window.is_empty(), "v1 has no window section");

        // A version-1 file with trailing bytes is still rejected.
        let mut padded = v1.clone();
        let crc_at = padded.len() - 4;
        padded.splice(crc_at..crc_at, [0u8; 8]);
        let crc = crc32(&padded[..crc_at + 8]);
        padded[crc_at + 8..].copy_from_slice(&crc.to_le_bytes());
        assert!(Checkpoint::from_bytes(&padded).is_err());
    }

    #[test]
    fn file_round_trip_is_atomic_write() {
        let dir = std::env::temp_dir().join(format!("cdim_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        assert!(!path.with_extension("ckpt_tmp").exists(), "temp file renamed away");
        let restored = Checkpoint::load(&path).unwrap();
        assert_eq!(restored.to_bytes(), ckpt.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_and_truncation_are_typed_errors() {
        let bytes = sample().to_bytes();

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(Checkpoint::from_bytes(&bad), Err(IngestError::Checkpoint(_))));

        let mut bad = bytes.clone();
        bad[20] ^= 0x10; // lines field → CRC mismatch
        assert!(matches!(Checkpoint::from_bytes(&bad), Err(IngestError::Checkpoint(_))));

        for len in [0, 10, 47, bytes.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }
}
