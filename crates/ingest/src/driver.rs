//! The online-retraining driver: poll → batch → extend → hot-swap,
//! with optional sliding-window expiry (retract) at checkpoint time.
//!
//! An [`IngestDriver`] owns the trained state (behind the same
//! [`InfluenceService`] the TCP server shares, so queries and retraining
//! never race on a half-updated model) and folds every cut batch through
//! the incremental path — [`CreditStore::apply_delta`] +
//! [`CdSelector::extend`] on the shared worker pool, published with
//! [`InfluenceService::publish_delta`]'s atomic swap. Periodic
//! [`Checkpoint`]s bind the snapshot to the log position of the first
//! *unfolded* record, so a restarted driver resumes exactly where the
//! model stopped — buffered-but-unshipped records are simply re-read.
//! (Records quarantined after that position are re-quarantined on
//! restart: the dead-letter sink may see duplicates across restarts,
//! never losses.)
//!
//! With a [`WindowPolicy`] set, the driver also *expires*: before every
//! checkpoint it retracts the out-of-window action prefix through
//! [`cdim_serve::InfluenceService::retract_delta`], keeping the served
//! model byte-identical to a from-scratch scan of just the surviving
//! window. The per-action tuples needed to rebuild expired prefixes ride
//! inside the checkpoint (format v2), so windowed runs survive restarts.
//!
//! [`CreditStore::apply_delta`]: cdim_core::CreditStore::apply_delta
//! [`CdSelector::extend`]: cdim_core::CdSelector::extend

use crate::batcher::{BatchConfig, DeadLetter, MicroBatcher, QuarantineReason};
use crate::checkpoint::{Checkpoint, WindowEntry};
use crate::error::IngestError;
use crate::follower::{LogFollower, Record};
use crate::metrics::{IngestMetrics, RateWindow, RATE_WINDOW};
use cdim_actionlog::{ActionLogBuilder, ActionLogDelta, LogBuildError, StorageError};
use cdim_core::{scan_with, CreditPolicy};
use cdim_graph::DirectedGraph;
use cdim_obs::{MetricsRegistry, Stage, TraceCtx, Tracer};
use cdim_serve::{InfluenceService, ModelSnapshot};
use cdim_util::{Parallelism, Timer};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When trained actions expire from the served model.
///
/// A windowed driver keeps a tuple buffer (one [`WindowEntry`] per
/// in-model action) and, at every checkpoint boundary, retracts the
/// expired prefix through [`cdim_serve::InfluenceService::retract_delta`]
/// before writing the checkpoint. Expiry is computed from the current
/// model state, so a crash between the retraction hot-swap and the
/// checkpoint write replays deterministically on restart — the window
/// invariant (served state == scan of just the window) holds across any
/// checkpoint/restart interleaving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Keep every trained action (the append-only behaviour).
    #[default]
    Unbounded,
    /// Keep at most this many most-recent actions.
    Actions(usize),
    /// Keep actions whose external id is at most this far behind the
    /// applied watermark (inclusive: `Age(0)` keeps only the watermark
    /// action).
    WatermarkAge(u32),
}

impl WindowPolicy {
    fn is_windowed(&self) -> bool {
        !matches!(self, WindowPolicy::Unbounded)
    }

    /// How many of `window`'s oldest actions fall outside the policy.
    fn expired_prefix(&self, window: &[WindowEntry], watermark: Option<u32>) -> usize {
        match (*self, watermark) {
            (WindowPolicy::Unbounded, _) | (WindowPolicy::WatermarkAge(_), None) => 0,
            (WindowPolicy::Actions(n), _) => window.len().saturating_sub(n),
            (WindowPolicy::WatermarkAge(age), Some(mark)) => {
                let oldest_kept = mark.saturating_sub(age);
                window.partition_point(|e| e.external < oldest_kept)
            }
        }
    }
}

/// Knobs for a follow session.
#[derive(Clone, Copy, Debug)]
pub struct FollowConfig {
    /// Micro-batch cut thresholds.
    pub batch: BatchConfig,
    /// Sleep between polls that found nothing.
    pub poll_interval: Duration,
    /// Checkpoint after this many publishes (0 = only on
    /// [`IngestDriver::finish`]).
    pub checkpoint_every: u64,
    /// Worker-pool budget for delta scans (and the initial empty scan).
    pub parallelism: Parallelism,
    /// Truncation threshold λ when starting fresh. `None` = 0.001 fresh,
    /// or whatever the resumed checkpoint was trained with; `Some` must
    /// match a resumed checkpoint or [`IngestDriver::open`] refuses.
    pub lambda: Option<f64>,
    /// Answer-cache capacity of the owned [`InfluenceService`].
    pub cache_capacity: usize,
    /// `run` exits cleanly (final flush + checkpoint) after this much
    /// idleness; `None` follows forever.
    pub idle_exit: Option<Duration>,
    /// Sliding-window expiry policy, enforced at checkpoint boundaries.
    pub window: WindowPolicy,
}

impl Default for FollowConfig {
    fn default() -> Self {
        FollowConfig {
            batch: BatchConfig::default(),
            poll_interval: Duration::from_millis(200),
            checkpoint_every: 1,
            parallelism: Parallelism::auto(),
            lambda: None,
            cache_capacity: 1024,
            idle_exit: None,
            window: WindowPolicy::Unbounded,
        }
    }
}

/// One applied batch, as observed by the driver.
#[derive(Clone, Copy, Debug)]
pub struct BatchReport {
    /// Whole actions in the batch.
    pub actions: usize,
    /// Tuples in the batch.
    pub tuples: usize,
    /// Wall seconds from batch cut to published model (extend + swap).
    pub apply_secs: f64,
    /// Actions in the model after the publish.
    pub model_actions: usize,
    /// Served model version after the publish.
    pub model_version: u64,
}

/// What one [`IngestDriver::step`] did.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Complete records read this step.
    pub records: usize,
    /// Batches cut and published this step.
    pub batches: Vec<BatchReport>,
    /// Records quarantined this step (drained dead letters).
    pub dead_letters: Vec<DeadLetter>,
    /// Records quarantined over the driver incarnation's lifetime (not
    /// just this step).
    pub quarantined_total: u64,
    /// Reason of the most recent quarantine ever, surviving drains.
    pub last_quarantine_reason: Option<QuarantineReason>,
}

impl std::fmt::Display for StepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} records", self.records)?;
        for b in &self.batches {
            write!(
                f,
                "; published {} actions ({} tuples) in {:.3}s -> v{} ({} actions)",
                b.actions, b.tuples, b.apply_secs, b.model_version, b.model_actions
            )?;
        }
        if !self.dead_letters.is_empty() {
            write!(
                f,
                "; {} quarantined ({} total)",
                self.dead_letters.len(),
                self.quarantined_total
            )?;
            if let Some(reason) = &self.last_quarantine_reason {
                write!(f, ", last: {reason}")?;
            }
        }
        Ok(())
    }
}

/// Pre-resolved stage handles for the driver's spans in the
/// process-global flight recorder (resolve once at open, record
/// forever — the same discipline as [`IngestMetrics`]).
struct IngestTrace {
    tracer: Arc<Tracer>,
    step: Stage,
    poll: Stage,
    publish: Stage,
    checkpoint: Stage,
    retract: Stage,
}

impl IngestTrace {
    fn register(tracer: Arc<Tracer>) -> Self {
        IngestTrace {
            step: tracer.stage("ingest.step"),
            poll: tracer.stage("ingest.poll"),
            publish: tracer.stage("ingest.publish_delta"),
            checkpoint: tracer.stage("ingest.checkpoint"),
            retract: tracer.stage("ingest.retract"),
            tracer,
        }
    }
}

/// The live-ingestion driver (see module docs).
pub struct IngestDriver {
    graph: DirectedGraph,
    policy: CreditPolicy,
    follower: LogFollower,
    batcher: MicroBatcher,
    service: Arc<InfluenceService>,
    checkpoint_path: PathBuf,
    config: FollowConfig,
    /// Highest external action id folded into the served model.
    applied_watermark: Option<u32>,
    publishes_since_checkpoint: u64,
    metrics: IngestMetrics,
    /// Trailing-window read throughput feeding the records/sec gauge.
    rate: RateWindow,
    /// When the applied watermark last advanced (a publish landed) —
    /// what the watermark-age gauge measures against. `None` until the
    /// first publish of this incarnation.
    watermark_advanced_at: Option<Instant>,
    /// Tuple buffer for windowed runs: one entry per in-model action,
    /// oldest first. Empty (and unmaintained) under
    /// [`WindowPolicy::Unbounded`].
    window: Vec<WindowEntry>,
    /// Flight-recorder stage handles for the ingest spans.
    trace: IngestTrace,
}

impl IngestDriver {
    /// Opens a driver over `log_path`, resuming from `checkpoint_path` if
    /// that file exists, otherwise starting from an empty model over
    /// `graph`'s user universe.
    ///
    /// `policy` must be the policy every previous incarnation used (the
    /// same contract as `cdim train --append`: checkpoints persist
    /// credits, not policy parameters).
    pub fn open(
        graph: DirectedGraph,
        policy: CreditPolicy,
        log_path: &Path,
        checkpoint_path: &Path,
        config: FollowConfig,
    ) -> Result<Self, IngestError> {
        Self::open_with_registry(
            graph,
            policy,
            log_path,
            checkpoint_path,
            config,
            Arc::new(MetricsRegistry::new()),
        )
    }

    /// [`open`](Self::open), reporting into `registry` — pass
    /// [`MetricsRegistry::global`] to land the ingest series on the same
    /// scrape endpoint and wire dump as every other layer. The owned
    /// [`InfluenceService`] shares the registry, so op 6 on a server
    /// spawned from [`service`](Self::service) dumps both.
    pub fn open_with_registry(
        graph: DirectedGraph,
        policy: CreditPolicy,
        log_path: &Path,
        checkpoint_path: &Path,
        config: FollowConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, IngestError> {
        let (snapshot, follower, batcher, watermark, window) = if checkpoint_path.exists() {
            let ckpt = Checkpoint::load(checkpoint_path)?;
            if ckpt.snapshot.num_users() != graph.num_nodes() {
                return Err(IngestError::Config(format!(
                    "checkpoint has {} users but the graph has {} nodes",
                    ckpt.snapshot.num_users(),
                    graph.num_nodes()
                )));
            }
            let trained_lambda = ckpt.snapshot.lambda();
            if let Some(lambda) = config.lambda {
                if lambda != trained_lambda {
                    return Err(IngestError::Config(format!(
                        "--lambda {lambda} conflicts with the checkpoint's lambda \
                         {trained_lambda} (the truncation threshold is fixed at training time)"
                    )));
                }
            }
            let window = if config.window.is_windowed() {
                // Expiry needs the trained tuples of every in-model
                // action; a checkpoint written without a window policy
                // (or by a version-1 build) does not carry them.
                if ckpt.window.len() != ckpt.snapshot.num_actions() {
                    return Err(IngestError::Config(format!(
                        "a window policy needs per-action tuples for all {} trained actions \
                         but the checkpoint holds {} (it was written without a window policy \
                         or by an older build); retrain from the log to start a windowed run",
                        ckpt.snapshot.num_actions(),
                        ckpt.window.len()
                    )));
                }
                ckpt.window
            } else {
                // Unbounded runs never expire, so the buffer would only
                // go stale as the model grows past it: drop it.
                Vec::new()
            };
            let follower = LogFollower::resume(log_path, ckpt.offset, ckpt.lines);
            let batcher = MicroBatcher::resume(ckpt.watermark);
            (ckpt.snapshot, follower, batcher, ckpt.watermark, window)
        } else {
            let lambda = config.lambda.unwrap_or(0.001);
            let empty = ActionLogBuilder::new(graph.num_nodes()).build();
            let store = scan_with(&graph, &empty, &policy, lambda, config.parallelism)?;
            (
                ModelSnapshot::from_store(store),
                LogFollower::open(log_path),
                MicroBatcher::new(),
                None,
                Vec::new(),
            )
        };
        let metrics = IngestMetrics::register(&registry);
        let service =
            Arc::new(InfluenceService::with_registry(snapshot, config.cache_capacity, registry));
        Ok(IngestDriver {
            graph,
            policy,
            follower,
            batcher,
            service,
            checkpoint_path: checkpoint_path.to_path_buf(),
            config,
            applied_watermark: watermark,
            publishes_since_checkpoint: 0,
            metrics,
            rate: RateWindow::new(RATE_WINDOW),
            watermark_advanced_at: None,
            window,
            trace: IngestTrace::register(Tracer::global()),
        })
    }

    /// The query service the driver publishes into — share it with
    /// [`cdim_serve::server::spawn`] to serve queries while following.
    pub fn service(&self) -> &Arc<InfluenceService> {
        &self.service
    }

    /// The currently served model.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.service.snapshot()
    }

    /// The follower's (byte offset, lines consumed) position.
    pub fn position(&self) -> (u64, u64) {
        (self.follower.offset(), self.follower.lines_consumed())
    }

    /// One poll → batch → publish cycle. Never blocks beyond file I/O.
    ///
    /// Productive steps (new records, or a batch coming due) are traced
    /// as an `ingest.step` root with poll/publish/checkpoint children;
    /// idle polls record nothing, so a quiet follow loop at 5 Hz never
    /// pollutes the flight recorder.
    pub fn step(&mut self) -> Result<StepReport, IngestError> {
        let t0 = self.trace.tracer.now_ns();
        let records = self.follower.poll()?;
        let polled_ns = self.trace.tracer.now_ns();
        for r in &records {
            validate_record(r, self.graph.num_nodes())?;
        }
        for r in &records {
            self.batcher.push(*r);
        }
        let due = self.batcher.due(&self.config.batch);
        let ctx = if records.is_empty() && !due {
            TraceCtx::unsampled()
        } else {
            self.trace.tracer.begin_trace()
        };
        let root = self.trace.tracer.open_at(ctx, self.trace.step, t0);
        self.trace.tracer.record(root.ctx(), self.trace.poll, t0, polled_ns);
        let mut batches = Vec::new();
        if due {
            if let Some(report) = self.apply_pending(root.ctx())? {
                batches.push(report);
            }
        }
        let dead_letters = self.batcher.drain_dead_letters();
        self.observe_step(records.len(), &dead_letters);
        self.trace.tracer.close(root);
        Ok(StepReport {
            records: records.len(),
            batches,
            dead_letters,
            quarantined_total: self.batcher.quarantined_total(),
            last_quarantine_reason: self.batcher.last_quarantine_reason(),
        })
    }

    /// Feed one step's observations into the metrics registry. Pure
    /// telemetry: nothing here touches the model path.
    fn observe_step(&mut self, records: usize, dead_letters: &[DeadLetter]) {
        self.metrics.records.add(records as u64);
        self.rate.record(records);
        self.metrics.records_per_sec.set(self.rate.rate());
        self.metrics.lag_bytes.set(self.follower.lag_bytes() as f64);
        if let Some(at) = self.watermark_advanced_at {
            self.metrics.watermark_age.set(at.elapsed().as_secs_f64());
        }
        if let Some(last) = dead_letters.last() {
            self.metrics.quarantined.add(dead_letters.len() as u64);
            self.metrics.last_quarantine.set(&last.reason.to_string());
        }
    }

    /// End of stream: drains the remaining backlog (a capped poll reads
    /// at most [`crate::follower::MAX_POLL_BYTES`] at a time), seals the
    /// open action, publishes everything pending, and checkpoints. After
    /// this the model covers every complete record in the file.
    pub fn finish(&mut self) -> Result<StepReport, IngestError> {
        let mut report = StepReport::default();
        loop {
            let step = self.step()?;
            let drained = step.records == 0;
            report.records += step.records;
            report.batches.extend(step.batches);
            report.dead_letters.extend(step.dead_letters);
            if drained {
                break;
            }
        }
        self.batcher.seal_open();
        // The final flush is its own traced step (there was no poll).
        let flush_root = self.trace.tracer.open(self.trace.tracer.begin_trace(), self.trace.step);
        if let Some(batch) = self.apply_pending(flush_root.ctx())? {
            report.batches.push(batch);
        }
        self.trace.tracer.close(flush_root);
        let dead_letters = self.batcher.drain_dead_letters();
        self.observe_step(0, &dead_letters);
        report.dead_letters.extend(dead_letters);
        report.quarantined_total = self.batcher.quarantined_total();
        report.last_quarantine_reason = self.batcher.last_quarantine_reason();
        self.checkpoint()?;
        Ok(report)
    }

    /// Cuts and applies whatever is sealed, regardless of thresholds.
    /// Publish and checkpoint work is recorded under `ctx` (spans opened
    /// across an error `?` are abandoned, never recorded — an unclosed
    /// `ActiveSpan` is plain data).
    fn apply_pending(&mut self, ctx: TraceCtx) -> Result<Option<BatchReport>, IngestError> {
        let base = self.service.snapshot().num_actions();
        let Some((delta, meta)) = self.batcher.take_batch(base, self.graph.num_nodes()) else {
            return Ok(None);
        };
        let timer = Timer::start();
        let publish_span = self.trace.tracer.open(ctx, self.trace.publish);
        self.service.publish_delta(&self.graph, &delta, &self.policy, self.config.parallelism)?;
        self.trace.tracer.close(publish_span);
        let apply_secs = timer.secs();
        if self.config.window.is_windowed() {
            let additions = delta.additions();
            for a in 0..additions.num_actions() as u32 {
                self.window.push(WindowEntry {
                    external: additions.external_id(a),
                    users: additions.users_of(a).to_vec(),
                    times: additions.times_of(a).to_vec(),
                });
            }
        }
        self.applied_watermark = Some(meta.last_action);
        self.watermark_advanced_at = Some(Instant::now());
        self.metrics.watermark_age.set(0.0);
        self.metrics.batch_actions.observe(meta.actions as f64);
        self.publishes_since_checkpoint += 1;
        let report = BatchReport {
            actions: meta.actions,
            tuples: meta.tuples,
            apply_secs,
            model_actions: self.service.snapshot().num_actions(),
            model_version: self.service.model_version(),
        };
        if self.config.checkpoint_every > 0
            && self.publishes_since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint_traced(ctx)?;
        }
        Ok(Some(report))
    }

    /// Retracts whatever the window policy has expired from the served
    /// model, rebuilding the expired prefix as an [`ActionLogDelta`] from
    /// the tuple buffer. Idempotent: expiry is computed from the current
    /// buffer and watermark, so replaying it after a crash that lost the
    /// subsequent checkpoint reaches the same state. Retraction moves
    /// neither the log position nor the watermark.
    fn enforce_window(&mut self, ctx: TraceCtx) -> Result<(), IngestError> {
        let expired = self.config.window.expired_prefix(&self.window, self.applied_watermark);
        if expired == 0 {
            return Ok(());
        }
        let retract_span = self.trace.tracer.open(ctx, self.trace.retract);
        let mut builder = ActionLogBuilder::new(self.graph.num_nodes());
        for entry in &self.window[..expired] {
            for (&u, &t) in entry.users.iter().zip(&entry.times) {
                builder.push(u, entry.external, t);
            }
        }
        // External ids ascend across the buffer, so the built log's dense
        // order is the buffer (= store prefix) order, and the builder's
        // (action, time, user) sort reproduces the applied slices exactly
        // — `retract_delta`'s bitwise prefix check holds by construction.
        let delta = ActionLogDelta::new(0, builder.build());
        self.service.retract_delta(&self.graph, &delta, &self.policy, self.config.parallelism)?;
        self.trace.tracer.close(retract_span);
        self.window.drain(..expired);
        Ok(())
    }

    /// Atomically writes the restart point: the served snapshot plus the
    /// position of the first record it does not cover (buffered open or
    /// sealed-but-unshipped records are deliberately *behind* the saved
    /// offset, so a restart re-reads them). Windowed runs expire the
    /// out-of-window prefix first, so every checkpoint is window-clean.
    pub fn checkpoint(&mut self) -> Result<(), IngestError> {
        let ctx = self.trace.tracer.begin_trace();
        self.checkpoint_traced(ctx)
    }

    /// [`checkpoint`](Self::checkpoint) recorded under `ctx` (the
    /// enclosing step's root when driven from [`apply_pending`], a fresh
    /// root trace when called directly).
    fn checkpoint_traced(&mut self, ctx: TraceCtx) -> Result<(), IngestError> {
        let timer = Timer::start();
        let span = self.trace.tracer.open(ctx, self.trace.checkpoint);
        self.enforce_window(span.ctx())?;
        let (offset, lines) = self
            .batcher
            .durable_mark()
            .unwrap_or((self.follower.offset(), self.follower.lines_consumed()));
        let ckpt = Checkpoint {
            snapshot: (*self.service.snapshot()).clone(),
            offset,
            lines,
            watermark: self.applied_watermark,
            window: self.window.clone(),
        };
        ckpt.save(&self.checkpoint_path)?;
        self.publishes_since_checkpoint = 0;
        self.metrics.checkpoint_seconds.observe(timer.secs());
        self.trace.tracer.close(span);
        Ok(())
    }

    /// The blocking follow loop: steps forever (sleeping
    /// `poll_interval` between empty polls), reporting each productive
    /// step through `on_report`. With `idle_exit` set, a quiet log ends
    /// the loop cleanly via [`finish`](Self::finish).
    pub fn run(&mut self, mut on_report: impl FnMut(&StepReport)) -> Result<(), IngestError> {
        let mut idle_since = Instant::now();
        loop {
            let report = self.step()?;
            let progressed = report.records > 0 || !report.batches.is_empty();
            if progressed {
                idle_since = Instant::now();
            }
            if progressed || !report.dead_letters.is_empty() {
                on_report(&report);
            }
            if let Some(limit) = self.config.idle_exit {
                if idle_since.elapsed() >= limit {
                    let last = self.finish()?;
                    if !last.batches.is_empty() || !last.dead_letters.is_empty() {
                        on_report(&last);
                    }
                    return Ok(());
                }
            }
            if !progressed {
                std::thread::sleep(self.config.poll_interval);
            }
        }
    }
}

/// The same validation offline loading performs, with the same
/// line-numbered diagnostic: non-finite times and users outside the
/// graph's universe are data corruption, not stream reordering, so they
/// are fatal rather than quarantined.
fn validate_record(r: &Record, num_users: usize) -> Result<(), IngestError> {
    let problem = if !r.time.is_finite() {
        Some(LogBuildError::NonFiniteTime { user: r.user, action: r.action, time: r.time })
    } else if (r.user as usize) >= num_users {
        Some(LogBuildError::UserOutOfRange { user: r.user, num_users })
    } else {
        None
    };
    match problem {
        Some(e) => Err(IngestError::Parse(StorageError::Parse {
            line: r.line as usize,
            message: e.to_string(),
        })),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;
    use std::io::Write as _;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdim_driver_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn append(path: &Path, data: &str) {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path).unwrap();
        f.write_all(data.as_bytes()).unwrap();
    }

    fn graph() -> DirectedGraph {
        GraphBuilder::new(5).edges([(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)]).build()
    }

    fn offline(graph: &DirectedGraph, log_text: &str, lambda: f64) -> Vec<u8> {
        let log = cdim_actionlog::storage::read_action_log(log_text.as_bytes(), graph.num_nodes())
            .unwrap();
        let store =
            scan_with(graph, &log, &CreditPolicy::Uniform, lambda, Parallelism::single()).unwrap();
        ModelSnapshot::from_store(store).to_bytes()
    }

    #[test]
    fn follow_equals_offline_train() {
        let dir = tempdir("equiv");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let full = "0\t1\t0.0\n1\t1\t1.0\n2\t1\t2.0\n3\t2\t0.5\n4\t2\t1.5\n0\t3\t0.0\n";

        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig { lambda: Some(0.0), ..Default::default() },
        )
        .unwrap();

        // Feed the file in awkward pieces, stepping in between.
        for chunk in ["0\t1\t0.0\n1\t1\t1.", "0\n2\t1\t2.0\n3\t2\t0.5\n", "4\t2\t1.5\n0\t3\t0.0\n"]
        {
            append(&log_path, chunk);
            driver.step().unwrap();
        }
        let report = driver.finish().unwrap();
        assert!(report.dead_letters.is_empty());
        assert_eq!(driver.snapshot().num_actions(), 3);
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), full, 0.0));
        // The checkpoint's position covers the whole file.
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.offset, full.len() as u64);
        assert_eq!(ckpt.watermark, Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_resumes_from_checkpoint_without_rescan() {
        let dir = tempdir("restart");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let full = "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n4\t2\t1.5\n0\t3\t0.0\n2\t3\t9.0\n";

        // First incarnation sees the first two actions (the second still
        // open), checkpoints implicitly per publish, and is dropped
        // without finish() — simulating a crash.
        {
            let mut driver = IngestDriver::open(
                graph(),
                CreditPolicy::Uniform,
                &log_path,
                &ckpt_path,
                FollowConfig { lambda: Some(0.001), ..Default::default() },
            )
            .unwrap();
            append(&log_path, "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n");
            let report = driver.step().unwrap();
            // Action 1 sealed (by action 2's record) and published.
            assert_eq!(report.batches.len(), 1);
            assert_eq!(driver.snapshot().num_actions(), 1);
        }

        // The checkpoint points at action 2's first record, not the EOF.
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.offset, 16);
        assert_eq!(ckpt.lines, 2);
        assert_eq!(ckpt.watermark, Some(1));

        // Second incarnation resumes mid-file and reads the rest.
        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig::default(),
        )
        .unwrap();
        append(&log_path, "4\t2\t1.5\n0\t3\t0.0\n2\t3\t9.0\n");
        driver.step().unwrap();
        driver.finish().unwrap();
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), full, 0.001));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conflicting_lambda_on_resume_is_refused() {
        let dir = tempdir("lambda");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        {
            let mut driver = IngestDriver::open(
                graph(),
                CreditPolicy::Uniform,
                &log_path,
                &ckpt_path,
                FollowConfig { lambda: Some(0.001), ..Default::default() },
            )
            .unwrap();
            driver.checkpoint().unwrap();
        }
        match IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig { lambda: Some(0.5), ..Default::default() },
        ) {
            Err(IngestError::Config(why)) => assert!(why.contains("lambda"), "{why}"),
            Err(other) => panic!("expected a config error, got {other}"),
            Ok(_) => panic!("conflicting lambda accepted"),
        }
        // No explicit lambda adopts the checkpoint's.
        let driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig::default(),
        )
        .unwrap();
        assert_eq!(driver.snapshot().lambda(), 0.001);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_universe_user_is_the_offline_diagnostic() {
        let dir = tempdir("baduser");
        let log_path = dir.join("actions.tsv");
        append(&log_path, "99\t1\t0.0\n");
        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &dir.join("model.ckpt"),
            FollowConfig::default(),
        )
        .unwrap();
        match driver.step() {
            Err(IngestError::Parse(StorageError::Parse { line, message })) => {
                assert_eq!(line, 1);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_by_actions_expires_at_checkpoints() {
        let dir = tempdir("win_actions");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let full = "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n4\t2\t1.5\n0\t3\t0.0\n2\t3\t9.0\n1\t4\t2.0\n";
        let window = "0\t3\t0.0\n2\t3\t9.0\n1\t4\t2.0\n";

        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig {
                lambda: Some(0.0),
                window: WindowPolicy::Actions(2),
                ..Default::default()
            },
        )
        .unwrap();
        for chunk in
            ["0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n", "4\t2\t1.5\n0\t3\t0.0\n2\t3\t9.0\n1\t4\t2.0\n"]
        {
            append(&log_path, chunk);
            driver.step().unwrap();
        }
        let report = driver.finish().unwrap();
        assert!(report.dead_letters.is_empty());
        // Four actions went in; only the last two are still served.
        assert_eq!(driver.snapshot().num_actions(), 2);
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), window, 0.0));
        // The checkpoint is window-clean and carries the surviving tuples.
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.offset, full.len() as u64);
        assert_eq!(ckpt.watermark, Some(4));
        assert_eq!(ckpt.snapshot.num_actions(), 2);
        let externals: Vec<u32> = ckpt.window.iter().map(|e| e.external).collect();
        assert_eq!(externals, [3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_by_watermark_age_expires_by_external_id() {
        let dir = tempdir("win_age");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        // External ids with a gap: 1, 2, 5, 6. Age 4 below watermark 6
        // keeps ids >= 2 — three actions, which a count-based window of
        // the same nominal size would cut differently.
        let full = "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n0\t5\t0.0\n2\t5\t9.0\n1\t6\t2.0\n";
        let window = "3\t2\t0.5\n0\t5\t0.0\n2\t5\t9.0\n1\t6\t2.0\n";

        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig {
                lambda: Some(0.0),
                window: WindowPolicy::WatermarkAge(4),
                ..Default::default()
            },
        )
        .unwrap();
        append(&log_path, full);
        driver.step().unwrap();
        driver.finish().unwrap();
        assert_eq!(driver.snapshot().num_actions(), 3);
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), window, 0.0));
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        let externals: Vec<u32> = ckpt.window.iter().map(|e| e.external).collect();
        assert_eq!(externals, [2, 5, 6]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_across_an_expiry_boundary_stays_window_identical() {
        let dir = tempdir("win_restart");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let config = FollowConfig {
            lambda: Some(0.001),
            window: WindowPolicy::Actions(2),
            ..Default::default()
        };

        // First incarnation publishes actions 1–3 (action 4 still open),
        // checkpoints — which expires action 1 — and crashes.
        {
            let mut driver =
                IngestDriver::open(graph(), CreditPolicy::Uniform, &log_path, &ckpt_path, config)
                    .unwrap();
            append(&log_path, "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n0\t3\t0.0\n2\t3\t9.0\n1\t4\t2.0\n");
            driver.step().unwrap();
            assert_eq!(driver.snapshot().num_actions(), 2, "expiry ran at the checkpoint");
        }
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.snapshot.num_actions(), 2);
        assert_eq!(ckpt.window.iter().map(|e| e.external).collect::<Vec<_>>(), [2, 3]);

        // Second incarnation resumes mid-window, finishes actions 4–5;
        // the final model must equal a scan of just the last two actions.
        let mut driver =
            IngestDriver::open(graph(), CreditPolicy::Uniform, &log_path, &ckpt_path, config)
                .unwrap();
        append(&log_path, "4\t4\t3.0\n2\t5\t0.1\n");
        driver.step().unwrap();
        driver.finish().unwrap();
        assert_eq!(
            driver.snapshot().to_bytes(),
            offline(&graph(), "1\t4\t2.0\n4\t4\t3.0\n2\t5\t0.1\n", 0.001)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_a_window_needs_window_tuples() {
        let dir = tempdir("win_missing");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        // An unbounded incarnation trains one action and checkpoints —
        // without the tuple buffer.
        {
            let mut driver = IngestDriver::open(
                graph(),
                CreditPolicy::Uniform,
                &log_path,
                &ckpt_path,
                FollowConfig { lambda: Some(0.0), ..Default::default() },
            )
            .unwrap();
            append(&log_path, "0\t1\t0.0\n1\t2\t1.0\n");
            driver.step().unwrap();
            driver.finish().unwrap();
            assert_eq!(driver.snapshot().num_actions(), 2);
        }
        match IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig { window: WindowPolicy::Actions(1), ..Default::default() },
        ) {
            Err(IngestError::Config(why)) => assert!(why.contains("window"), "{why}"),
            Err(other) => panic!("expected a config error, got {other}"),
            Ok(_) => panic!("windowed resume accepted a checkpoint without tuples"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flow_into_the_shared_registry() {
        let dir = tempdir("metrics");
        let log_path = dir.join("actions.tsv");
        let registry = Arc::new(MetricsRegistry::new());
        let mut driver = IngestDriver::open_with_registry(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &dir.join("model.ckpt"),
            FollowConfig { lambda: Some(0.0), ..Default::default() },
            Arc::clone(&registry),
        )
        .unwrap();
        // Two clean actions, then a stale record for the first one.
        append(&log_path, "0\t1\t0.0\n1\t2\t1.0\n2\t1\t5.0\n");
        let step = driver.step().unwrap();
        assert_eq!(step.records, 3);
        assert_eq!(step.dead_letters.len(), 1);
        assert_eq!(step.quarantined_total, 1);
        assert!(matches!(step.last_quarantine_reason, Some(QuarantineReason::StaleAction { .. })));
        driver.finish().unwrap();

        let dump = registry.dump();
        let counter = |name: &str| {
            dump.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter("cdim_ingest_records_total"), 3);
        assert_eq!(counter("cdim_ingest_quarantined_total"), 1);
        let (_, batch_hist) = dump
            .histograms
            .iter()
            .find(|(n, _)| n == "cdim_ingest_batch_actions")
            .expect("missing batch histogram");
        assert!(batch_hist.count >= 1);
        let (_, ckpt_hist) = dump
            .histograms
            .iter()
            .find(|(n, _)| n == "cdim_ingest_checkpoint_seconds")
            .expect("missing checkpoint histogram");
        assert!(ckpt_hist.count >= 1);
        let (_, key, value) = dump
            .infos
            .iter()
            .find(|(n, _, _)| n == "cdim_ingest_last_quarantine_reason")
            .expect("missing quarantine info");
        assert_eq!(key, "reason");
        assert!(value.contains("frontier"), "{value}");
        // The service shares the registry: serve series sit beside
        // ingest ones, so wire op 6 exposes both in one dump.
        assert!(Arc::ptr_eq(&driver.service().metrics_registry(), &registry));
        assert!(dump.counters.iter().any(|(n, _)| n == "cdim_serve_queries_total"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_idle_exit_finishes_cleanly() {
        let dir = tempdir("idle");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let text = "0\t1\t0.0\n1\t2\t1.0\n";
        append(&log_path, text);
        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig {
                lambda: Some(0.0),
                poll_interval: Duration::from_millis(1),
                idle_exit: Some(Duration::from_millis(20)),
                ..Default::default()
            },
        )
        .unwrap();
        let mut reports = 0;
        driver.run(|_| reports += 1).unwrap();
        assert!(reports >= 1);
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), text, 0.0));
        assert!(ckpt_path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
