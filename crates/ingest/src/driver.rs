//! The online-retraining driver: poll → batch → extend → hot-swap.
//!
//! An [`IngestDriver`] owns the trained state (behind the same
//! [`InfluenceService`] the TCP server shares, so queries and retraining
//! never race on a half-updated model) and folds every cut batch through
//! the incremental path — [`CreditStore::apply_delta`] +
//! [`CdSelector::extend`] on the shared worker pool, published with
//! [`InfluenceService::publish_delta`]'s atomic swap. Periodic
//! [`Checkpoint`]s bind the snapshot to the log position of the first
//! *unfolded* record, so a restarted driver resumes exactly where the
//! model stopped — buffered-but-unshipped records are simply re-read.
//! (Records quarantined after that position are re-quarantined on
//! restart: the dead-letter sink may see duplicates across restarts,
//! never losses.)
//!
//! [`CreditStore::apply_delta`]: cdim_core::CreditStore::apply_delta
//! [`CdSelector::extend`]: cdim_core::CdSelector::extend

use crate::batcher::{BatchConfig, DeadLetter, MicroBatcher};
use crate::checkpoint::Checkpoint;
use crate::error::IngestError;
use crate::follower::{LogFollower, Record};
use cdim_actionlog::{ActionLogBuilder, LogBuildError, StorageError};
use cdim_core::{scan_with, CreditPolicy};
use cdim_graph::DirectedGraph;
use cdim_serve::{InfluenceService, ModelSnapshot};
use cdim_util::{Parallelism, Timer};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for a follow session.
#[derive(Clone, Copy, Debug)]
pub struct FollowConfig {
    /// Micro-batch cut thresholds.
    pub batch: BatchConfig,
    /// Sleep between polls that found nothing.
    pub poll_interval: Duration,
    /// Checkpoint after this many publishes (0 = only on
    /// [`IngestDriver::finish`]).
    pub checkpoint_every: u64,
    /// Worker-pool budget for delta scans (and the initial empty scan).
    pub parallelism: Parallelism,
    /// Truncation threshold λ when starting fresh. `None` = 0.001 fresh,
    /// or whatever the resumed checkpoint was trained with; `Some` must
    /// match a resumed checkpoint or [`IngestDriver::open`] refuses.
    pub lambda: Option<f64>,
    /// Answer-cache capacity of the owned [`InfluenceService`].
    pub cache_capacity: usize,
    /// `run` exits cleanly (final flush + checkpoint) after this much
    /// idleness; `None` follows forever.
    pub idle_exit: Option<Duration>,
}

impl Default for FollowConfig {
    fn default() -> Self {
        FollowConfig {
            batch: BatchConfig::default(),
            poll_interval: Duration::from_millis(200),
            checkpoint_every: 1,
            parallelism: Parallelism::auto(),
            lambda: None,
            cache_capacity: 1024,
            idle_exit: None,
        }
    }
}

/// One applied batch, as observed by the driver.
#[derive(Clone, Copy, Debug)]
pub struct BatchReport {
    /// Whole actions in the batch.
    pub actions: usize,
    /// Tuples in the batch.
    pub tuples: usize,
    /// Wall seconds from batch cut to published model (extend + swap).
    pub apply_secs: f64,
    /// Actions in the model after the publish.
    pub model_actions: usize,
    /// Served model version after the publish.
    pub model_version: u64,
}

/// What one [`IngestDriver::step`] did.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Complete records read this step.
    pub records: usize,
    /// Batches cut and published this step.
    pub batches: Vec<BatchReport>,
    /// Records quarantined this step (drained dead letters).
    pub dead_letters: Vec<DeadLetter>,
}

impl std::fmt::Display for StepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} records", self.records)?;
        for b in &self.batches {
            write!(
                f,
                "; published {} actions ({} tuples) in {:.3}s -> v{} ({} actions)",
                b.actions, b.tuples, b.apply_secs, b.model_version, b.model_actions
            )?;
        }
        if !self.dead_letters.is_empty() {
            write!(f, "; {} quarantined", self.dead_letters.len())?;
        }
        Ok(())
    }
}

/// The live-ingestion driver (see module docs).
pub struct IngestDriver {
    graph: DirectedGraph,
    policy: CreditPolicy,
    follower: LogFollower,
    batcher: MicroBatcher,
    service: Arc<InfluenceService>,
    checkpoint_path: PathBuf,
    config: FollowConfig,
    /// Highest external action id folded into the served model.
    applied_watermark: Option<u32>,
    publishes_since_checkpoint: u64,
}

impl IngestDriver {
    /// Opens a driver over `log_path`, resuming from `checkpoint_path` if
    /// that file exists, otherwise starting from an empty model over
    /// `graph`'s user universe.
    ///
    /// `policy` must be the policy every previous incarnation used (the
    /// same contract as `cdim train --append`: checkpoints persist
    /// credits, not policy parameters).
    pub fn open(
        graph: DirectedGraph,
        policy: CreditPolicy,
        log_path: &Path,
        checkpoint_path: &Path,
        config: FollowConfig,
    ) -> Result<Self, IngestError> {
        let (snapshot, follower, batcher, watermark) = if checkpoint_path.exists() {
            let ckpt = Checkpoint::load(checkpoint_path)?;
            if ckpt.snapshot.num_users() != graph.num_nodes() {
                return Err(IngestError::Config(format!(
                    "checkpoint has {} users but the graph has {} nodes",
                    ckpt.snapshot.num_users(),
                    graph.num_nodes()
                )));
            }
            let trained_lambda = ckpt.snapshot.selector().store().lambda();
            if let Some(lambda) = config.lambda {
                if lambda != trained_lambda {
                    return Err(IngestError::Config(format!(
                        "--lambda {lambda} conflicts with the checkpoint's lambda \
                         {trained_lambda} (the truncation threshold is fixed at training time)"
                    )));
                }
            }
            let follower = LogFollower::resume(log_path, ckpt.offset, ckpt.lines);
            let batcher = MicroBatcher::resume(ckpt.watermark);
            (ckpt.snapshot, follower, batcher, ckpt.watermark)
        } else {
            let lambda = config.lambda.unwrap_or(0.001);
            let empty = ActionLogBuilder::new(graph.num_nodes()).build();
            let store = scan_with(&graph, &empty, &policy, lambda, config.parallelism)?;
            (
                ModelSnapshot::from_store(store),
                LogFollower::open(log_path),
                MicroBatcher::new(),
                None,
            )
        };
        Ok(IngestDriver {
            graph,
            policy,
            follower,
            batcher,
            service: Arc::new(InfluenceService::new(snapshot, config.cache_capacity)),
            checkpoint_path: checkpoint_path.to_path_buf(),
            config,
            applied_watermark: watermark,
            publishes_since_checkpoint: 0,
        })
    }

    /// The query service the driver publishes into — share it with
    /// [`cdim_serve::server::spawn`] to serve queries while following.
    pub fn service(&self) -> &Arc<InfluenceService> {
        &self.service
    }

    /// The currently served model.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.service.snapshot()
    }

    /// The follower's (byte offset, lines consumed) position.
    pub fn position(&self) -> (u64, u64) {
        (self.follower.offset(), self.follower.lines_consumed())
    }

    /// One poll → batch → publish cycle. Never blocks beyond file I/O.
    pub fn step(&mut self) -> Result<StepReport, IngestError> {
        let records = self.follower.poll()?;
        for r in &records {
            validate_record(r, self.graph.num_nodes())?;
        }
        for r in &records {
            self.batcher.push(*r);
        }
        let mut batches = Vec::new();
        if self.batcher.due(&self.config.batch) {
            if let Some(report) = self.apply_pending()? {
                batches.push(report);
            }
        }
        Ok(StepReport {
            records: records.len(),
            batches,
            dead_letters: self.batcher.drain_dead_letters(),
        })
    }

    /// End of stream: drains the remaining backlog (a capped poll reads
    /// at most [`crate::follower::MAX_POLL_BYTES`] at a time), seals the
    /// open action, publishes everything pending, and checkpoints. After
    /// this the model covers every complete record in the file.
    pub fn finish(&mut self) -> Result<StepReport, IngestError> {
        let mut report = StepReport::default();
        loop {
            let step = self.step()?;
            let drained = step.records == 0;
            report.records += step.records;
            report.batches.extend(step.batches);
            report.dead_letters.extend(step.dead_letters);
            if drained {
                break;
            }
        }
        self.batcher.seal_open();
        if let Some(batch) = self.apply_pending()? {
            report.batches.push(batch);
        }
        report.dead_letters.extend(self.batcher.drain_dead_letters());
        self.checkpoint()?;
        Ok(report)
    }

    /// Cuts and applies whatever is sealed, regardless of thresholds.
    fn apply_pending(&mut self) -> Result<Option<BatchReport>, IngestError> {
        let base = self.service.snapshot().num_actions();
        let Some((delta, meta)) = self.batcher.take_batch(base, self.graph.num_nodes()) else {
            return Ok(None);
        };
        let timer = Timer::start();
        self.service.publish_delta(&self.graph, &delta, &self.policy, self.config.parallelism)?;
        let apply_secs = timer.secs();
        self.applied_watermark = Some(meta.last_action);
        self.publishes_since_checkpoint += 1;
        let report = BatchReport {
            actions: meta.actions,
            tuples: meta.tuples,
            apply_secs,
            model_actions: self.service.snapshot().num_actions(),
            model_version: self.service.model_version(),
        };
        if self.config.checkpoint_every > 0
            && self.publishes_since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(Some(report))
    }

    /// Atomically writes the restart point: the served snapshot plus the
    /// position of the first record it does not cover (buffered open or
    /// sealed-but-unshipped records are deliberately *behind* the saved
    /// offset, so a restart re-reads them).
    pub fn checkpoint(&mut self) -> Result<(), IngestError> {
        let (offset, lines) = self
            .batcher
            .durable_mark()
            .unwrap_or((self.follower.offset(), self.follower.lines_consumed()));
        let ckpt = Checkpoint {
            snapshot: (*self.service.snapshot()).clone(),
            offset,
            lines,
            watermark: self.applied_watermark,
        };
        ckpt.save(&self.checkpoint_path)?;
        self.publishes_since_checkpoint = 0;
        Ok(())
    }

    /// The blocking follow loop: steps forever (sleeping
    /// `poll_interval` between empty polls), reporting each productive
    /// step through `on_report`. With `idle_exit` set, a quiet log ends
    /// the loop cleanly via [`finish`](Self::finish).
    pub fn run(&mut self, mut on_report: impl FnMut(&StepReport)) -> Result<(), IngestError> {
        let mut idle_since = Instant::now();
        loop {
            let report = self.step()?;
            let progressed = report.records > 0 || !report.batches.is_empty();
            if progressed {
                idle_since = Instant::now();
            }
            if progressed || !report.dead_letters.is_empty() {
                on_report(&report);
            }
            if let Some(limit) = self.config.idle_exit {
                if idle_since.elapsed() >= limit {
                    let last = self.finish()?;
                    if !last.batches.is_empty() || !last.dead_letters.is_empty() {
                        on_report(&last);
                    }
                    return Ok(());
                }
            }
            if !progressed {
                std::thread::sleep(self.config.poll_interval);
            }
        }
    }
}

/// The same validation offline loading performs, with the same
/// line-numbered diagnostic: non-finite times and users outside the
/// graph's universe are data corruption, not stream reordering, so they
/// are fatal rather than quarantined.
fn validate_record(r: &Record, num_users: usize) -> Result<(), IngestError> {
    let problem = if !r.time.is_finite() {
        Some(LogBuildError::NonFiniteTime { user: r.user, action: r.action, time: r.time })
    } else if (r.user as usize) >= num_users {
        Some(LogBuildError::UserOutOfRange { user: r.user, num_users })
    } else {
        None
    };
    match problem {
        Some(e) => Err(IngestError::Parse(StorageError::Parse {
            line: r.line as usize,
            message: e.to_string(),
        })),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;
    use std::io::Write as _;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdim_driver_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn append(path: &Path, data: &str) {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path).unwrap();
        f.write_all(data.as_bytes()).unwrap();
    }

    fn graph() -> DirectedGraph {
        GraphBuilder::new(5).edges([(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)]).build()
    }

    fn offline(graph: &DirectedGraph, log_text: &str, lambda: f64) -> Vec<u8> {
        let log = cdim_actionlog::storage::read_action_log(log_text.as_bytes(), graph.num_nodes())
            .unwrap();
        let store =
            scan_with(graph, &log, &CreditPolicy::Uniform, lambda, Parallelism::single()).unwrap();
        ModelSnapshot::from_store(store).to_bytes()
    }

    #[test]
    fn follow_equals_offline_train() {
        let dir = tempdir("equiv");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let full = "0\t1\t0.0\n1\t1\t1.0\n2\t1\t2.0\n3\t2\t0.5\n4\t2\t1.5\n0\t3\t0.0\n";

        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig { lambda: Some(0.0), ..Default::default() },
        )
        .unwrap();

        // Feed the file in awkward pieces, stepping in between.
        for chunk in ["0\t1\t0.0\n1\t1\t1.", "0\n2\t1\t2.0\n3\t2\t0.5\n", "4\t2\t1.5\n0\t3\t0.0\n"]
        {
            append(&log_path, chunk);
            driver.step().unwrap();
        }
        let report = driver.finish().unwrap();
        assert!(report.dead_letters.is_empty());
        assert_eq!(driver.snapshot().num_actions(), 3);
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), full, 0.0));
        // The checkpoint's position covers the whole file.
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.offset, full.len() as u64);
        assert_eq!(ckpt.watermark, Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_resumes_from_checkpoint_without_rescan() {
        let dir = tempdir("restart");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let full = "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n4\t2\t1.5\n0\t3\t0.0\n2\t3\t9.0\n";

        // First incarnation sees the first two actions (the second still
        // open), checkpoints implicitly per publish, and is dropped
        // without finish() — simulating a crash.
        {
            let mut driver = IngestDriver::open(
                graph(),
                CreditPolicy::Uniform,
                &log_path,
                &ckpt_path,
                FollowConfig { lambda: Some(0.001), ..Default::default() },
            )
            .unwrap();
            append(&log_path, "0\t1\t0.0\n1\t1\t1.0\n3\t2\t0.5\n");
            let report = driver.step().unwrap();
            // Action 1 sealed (by action 2's record) and published.
            assert_eq!(report.batches.len(), 1);
            assert_eq!(driver.snapshot().num_actions(), 1);
        }

        // The checkpoint points at action 2's first record, not the EOF.
        let ckpt = Checkpoint::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.offset, 16);
        assert_eq!(ckpt.lines, 2);
        assert_eq!(ckpt.watermark, Some(1));

        // Second incarnation resumes mid-file and reads the rest.
        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig::default(),
        )
        .unwrap();
        append(&log_path, "4\t2\t1.5\n0\t3\t0.0\n2\t3\t9.0\n");
        driver.step().unwrap();
        driver.finish().unwrap();
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), full, 0.001));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conflicting_lambda_on_resume_is_refused() {
        let dir = tempdir("lambda");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        {
            let mut driver = IngestDriver::open(
                graph(),
                CreditPolicy::Uniform,
                &log_path,
                &ckpt_path,
                FollowConfig { lambda: Some(0.001), ..Default::default() },
            )
            .unwrap();
            driver.checkpoint().unwrap();
        }
        match IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig { lambda: Some(0.5), ..Default::default() },
        ) {
            Err(IngestError::Config(why)) => assert!(why.contains("lambda"), "{why}"),
            Err(other) => panic!("expected a config error, got {other}"),
            Ok(_) => panic!("conflicting lambda accepted"),
        }
        // No explicit lambda adopts the checkpoint's.
        let driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig::default(),
        )
        .unwrap();
        assert_eq!(driver.snapshot().selector().store().lambda(), 0.001);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_universe_user_is_the_offline_diagnostic() {
        let dir = tempdir("baduser");
        let log_path = dir.join("actions.tsv");
        append(&log_path, "99\t1\t0.0\n");
        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &dir.join("model.ckpt"),
            FollowConfig::default(),
        )
        .unwrap();
        match driver.step() {
            Err(IngestError::Parse(StorageError::Parse { line, message })) => {
                assert_eq!(line, 1);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_idle_exit_finishes_cleanly() {
        let dir = tempdir("idle");
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let text = "0\t1\t0.0\n1\t2\t1.0\n";
        append(&log_path, text);
        let mut driver = IngestDriver::open(
            graph(),
            CreditPolicy::Uniform,
            &log_path,
            &ckpt_path,
            FollowConfig {
                lambda: Some(0.0),
                poll_interval: Duration::from_millis(1),
                idle_exit: Some(Duration::from_millis(20)),
                ..Default::default()
            },
        )
        .unwrap();
        let mut reports = 0;
        driver.run(|_| reports += 1).unwrap();
        assert!(reports >= 1);
        assert_eq!(driver.snapshot().to_bytes(), offline(&graph(), text, 0.0));
        assert!(ckpt_path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
