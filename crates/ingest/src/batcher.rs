//! Groups streamed records into append-only [`ActionLogDelta`]s.
//!
//! The delta contract (see [`cdim_actionlog::delta`]) is that a batch
//! carries *whole, new* actions only: credit into a user is final at its
//! activation, so a tuple arriving for an action that was already folded
//! into the model cannot be applied — it can only be quarantined. The
//! batcher is the component that upholds this contract for a live stream:
//!
//! * an action stays **open** while its records arrive; it is **sealed**
//!   when the stream moves past it (a record for a higher action id), so
//!   an action's records may straddle any number of polls and batch
//!   boundaries without being torn;
//! * sealed actions accumulate until a **count** threshold (so many
//!   closed actions pending) or an **age** threshold (the oldest has
//!   waited long enough) cuts them into one [`ActionLogDelta`];
//! * records that break append-only ordering — an action at or below the
//!   high-water mark, or a timestamp running backwards inside the open
//!   action — go to the **dead-letter sink** with a typed
//!   [`QuarantineReason`] instead of poisoning the batch.
//!
//! Equivalence: for a well-formed producer nothing is quarantined, the
//! deltas partition the file's actions in order, and folding them equals
//! the one-shot offline scan byte for byte.

use crate::follower::Record;
use cdim_actionlog::{ActionLogBuilder, ActionLogDelta};
use std::time::{Duration, Instant};

/// Batch-cutting thresholds.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Cut a delta once this many sealed actions are pending (≥ 1).
    pub max_actions: usize,
    /// Cut a delta once the oldest sealed action has waited this long.
    pub max_age: Duration,
}

impl Default for BatchConfig {
    /// Ship every sealed action promptly: batch of 1, half-second age cap.
    fn default() -> Self {
        BatchConfig { max_actions: 1, max_age: Duration::from_millis(500) }
    }
}

/// Why a record was quarantined instead of batched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuarantineReason {
    /// The record names an action at or below the stream's frontier —
    /// the action was already sealed (possibly already folded into the
    /// model), so its credits cannot be amended append-only.
    StaleAction {
        /// Smallest external action id the stream still admits.
        frontier: u32,
    },
    /// The record's timestamp runs backwards inside the open action.
    TimeRegression {
        /// The open action's newest admitted timestamp.
        last_time: f64,
    },
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::StaleAction { frontier } => {
                write!(f, "action below the stream frontier {frontier}")
            }
            QuarantineReason::TimeRegression { last_time } => {
                write!(f, "timestamp runs backwards (open action is at t = {last_time})")
            }
        }
    }
}

/// A quarantined record with its reason — the dead-letter sink's unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeadLetter {
    /// The offending record (position included, for triage).
    pub record: Record,
    /// Why it could not be batched.
    pub reason: QuarantineReason,
}

impl std::fmt::Display for DeadLetter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}: ({}, {}, {}) quarantined: {}",
            self.record.line, self.record.user, self.record.action, self.record.time, self.reason
        )
    }
}

/// One action being accumulated.
#[derive(Clone, Debug)]
struct PendingAction {
    action: u32,
    /// (user, time) in arrival order.
    records: Vec<(u32, f64)>,
    /// Position of the action's first record — the resume point that
    /// re-covers the whole action.
    first_offset: u64,
    first_line: u64,
    last_time: f64,
}

/// Summary of one cut batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchMeta {
    /// Whole actions in the delta.
    pub actions: usize,
    /// Tuples in the delta.
    pub tuples: usize,
    /// Smallest external action id shipped.
    pub first_action: u32,
    /// Largest external action id shipped — the new applied watermark.
    pub last_action: u32,
}

/// The micro-batcher: open action + sealed queue + dead letters.
#[derive(Debug)]
pub struct MicroBatcher {
    /// Highest external action id ever sealed.
    watermark: Option<u32>,
    open: Option<PendingAction>,
    closed: Vec<PendingAction>,
    closed_tuples: usize,
    /// When the oldest entry of `closed` was sealed.
    closed_since: Option<Instant>,
    dead: Vec<DeadLetter>,
    quarantined_total: u64,
    /// Reason of the most recent quarantine, surviving drains — the
    /// operator-facing "what went wrong last" even after the dead
    /// letters themselves were consumed.
    last_quarantine: Option<QuarantineReason>,
}

impl MicroBatcher {
    /// An empty batcher (fresh stream).
    pub fn new() -> Self {
        Self::resume(None)
    }

    /// A batcher resuming behind `watermark` — every action at or below
    /// it was already folded into the model by a previous incarnation.
    pub fn resume(watermark: Option<u32>) -> Self {
        MicroBatcher {
            watermark,
            open: None,
            closed: Vec::new(),
            closed_tuples: 0,
            closed_since: None,
            dead: Vec::new(),
            quarantined_total: 0,
            last_quarantine: None,
        }
    }

    /// Routes one record: into the open action, a fresh action (sealing
    /// the previous one), or quarantine.
    pub fn push(&mut self, record: Record) {
        let frontier = match (&self.open, self.watermark) {
            (Some(open), _) => open.action,
            (None, Some(w)) => w.saturating_add(1),
            (None, None) => 0,
        };
        if record.action < frontier {
            return self.quarantine(record, QuarantineReason::StaleAction { frontier });
        }
        match &mut self.open {
            Some(open) if record.action == open.action => {
                if record.time < open.last_time {
                    let last_time = open.last_time;
                    return self.quarantine(record, QuarantineReason::TimeRegression { last_time });
                }
                open.last_time = record.time;
                open.records.push((record.user, record.time));
            }
            Some(open) if record.action > open.action => {
                let sealed = std::mem::replace(open, PendingAction::starting(&record));
                self.seal(sealed);
            }
            Some(_) => unreachable!("record.action < frontier was quarantined above"),
            None => self.open = Some(PendingAction::starting(&record)),
        }
    }

    fn seal(&mut self, action: PendingAction) {
        self.watermark = Some(action.action);
        self.closed_tuples += action.records.len();
        if self.closed.is_empty() {
            self.closed_since = Some(Instant::now());
        }
        self.closed.push(action);
    }

    fn quarantine(&mut self, record: Record, reason: QuarantineReason) {
        self.quarantined_total += 1;
        self.last_quarantine = Some(reason);
        self.dead.push(DeadLetter { record, reason });
    }

    /// Seals the open action (end of stream / clean shutdown). After
    /// this, late records for it would be quarantined — only call when
    /// the producer is done or staleness is acceptable.
    pub fn seal_open(&mut self) {
        if let Some(open) = self.open.take() {
            self.seal(open);
        }
    }

    /// Whether the pending sealed actions are ripe under `config`.
    pub fn due(&self, config: &BatchConfig) -> bool {
        self.due_at(config, Instant::now())
    }

    /// [`due`](Self::due) against an explicit clock (deterministic tests).
    pub fn due_at(&self, config: &BatchConfig, now: Instant) -> bool {
        if self.closed.is_empty() {
            return false;
        }
        self.closed.len() >= config.max_actions.max(1)
            || self
                .closed_since
                .is_some_and(|since| now.saturating_duration_since(since) >= config.max_age)
    }

    /// Cuts every pending sealed action into one [`ActionLogDelta`] based
    /// at `base_actions`, over a universe of `num_users` users. `None`
    /// when nothing is sealed. The open action is untouched.
    ///
    /// # Panics
    /// Panics if a pending record's user id is ≥ `num_users` — the driver
    /// validates records against the universe before pushing them.
    pub fn take_batch(
        &mut self,
        base_actions: usize,
        num_users: usize,
    ) -> Option<(ActionLogDelta, BatchMeta)> {
        if self.closed.is_empty() {
            return None;
        }
        let mut builder = ActionLogBuilder::growing();
        for pending in &self.closed {
            for &(user, time) in &pending.records {
                builder
                    .try_push(user, pending.action, time)
                    .expect("records validated before batching");
            }
        }
        let meta = BatchMeta {
            actions: self.closed.len(),
            tuples: self.closed_tuples,
            first_action: self.closed.first().expect("non-empty").action,
            last_action: self.closed.last().expect("non-empty").action,
        };
        self.closed.clear();
        self.closed_tuples = 0;
        self.closed_since = None;
        // Sealed actions carry ascending external ids, and the builder
        // densifies in ascending external order — the delta's local ids
        // are exactly the shipping order, which is exactly the order a
        // one-shot offline build would assign.
        let log = builder.build().widen_users(num_users);
        Some((ActionLogDelta::new(base_actions, log), meta))
    }

    /// Position (byte offset, lines consumed) from which a restart
    /// re-covers every record not yet shipped in a batch: the first
    /// record of the oldest pending action. `None` when nothing is
    /// pending — resume from the follower's own position.
    pub fn durable_mark(&self) -> Option<(u64, u64)> {
        let first = self.closed.first().or(self.open.as_ref())?;
        Some((first.first_offset, first.first_line - 1))
    }

    /// Highest external action id sealed so far.
    pub fn watermark(&self) -> Option<u32> {
        self.watermark
    }

    /// Sealed actions awaiting a batch cut.
    pub fn pending_actions(&self) -> usize {
        self.closed.len()
    }

    /// Whether an action is currently open.
    pub fn has_open(&self) -> bool {
        self.open.is_some()
    }

    /// Records quarantined over the batcher's lifetime.
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined_total
    }

    /// Reason of the most recent quarantine, if any — unlike the dead
    /// letters it is not consumed by [`drain_dead_letters`](Self::drain_dead_letters).
    pub fn last_quarantine_reason(&self) -> Option<QuarantineReason> {
        self.last_quarantine
    }

    /// Drains the dead-letter sink.
    pub fn drain_dead_letters(&mut self) -> Vec<DeadLetter> {
        std::mem::take(&mut self.dead)
    }
}

impl Default for MicroBatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl PendingAction {
    fn starting(record: &Record) -> Self {
        PendingAction {
            action: record.action,
            records: vec![(record.user, record.time)],
            first_offset: record.offset,
            first_line: record.line,
            last_time: record.time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(user: u32, action: u32, time: f64, line: u64) -> Record {
        Record { user, action, time, offset: line * 10, line }
    }

    #[test]
    fn actions_seal_on_boundary_and_batch_by_count() {
        let mut b = MicroBatcher::new();
        b.push(record(0, 5, 1.0, 1));
        b.push(record(1, 5, 2.0, 2));
        assert_eq!(b.pending_actions(), 0);
        assert!(b.has_open());
        assert!(b.take_batch(0, 4).is_none());

        // A record for action 7 seals action 5.
        b.push(record(2, 7, 0.5, 3));
        assert_eq!(b.pending_actions(), 1);
        assert_eq!(b.watermark(), Some(5));
        let config = BatchConfig { max_actions: 1, max_age: Duration::from_secs(3600) };
        assert!(b.due(&config));

        let (delta, meta) = b.take_batch(0, 4).unwrap();
        assert_eq!(meta, BatchMeta { actions: 1, tuples: 2, first_action: 5, last_action: 5 });
        assert_eq!(delta.base_actions(), 0);
        assert_eq!(delta.num_new_actions(), 1);
        assert_eq!(delta.num_users(), 4);
        assert_eq!(delta.additions().users_of(0), &[0, 1]);
        assert_eq!(delta.additions().external_id(0), 5);
        // Action 7 is still open.
        assert!(b.has_open());
        assert!(b.take_batch(1, 4).is_none());
    }

    #[test]
    fn count_threshold_accumulates_batches() {
        let config = BatchConfig { max_actions: 2, max_age: Duration::from_secs(3600) };
        let mut b = MicroBatcher::new();
        b.push(record(0, 1, 0.0, 1));
        b.push(record(0, 2, 0.0, 2));
        assert!(!b.due(&config), "one sealed action is below the threshold");
        b.push(record(0, 3, 0.0, 3));
        assert!(b.due(&config));
        let (delta, meta) = b.take_batch(0, 1).unwrap();
        assert_eq!(meta.actions, 2);
        assert_eq!((meta.first_action, meta.last_action), (1, 2));
        assert_eq!(delta.num_new_actions(), 2);
    }

    #[test]
    fn age_threshold_fires_without_count() {
        let config = BatchConfig { max_actions: 100, max_age: Duration::from_millis(5) };
        let mut b = MicroBatcher::new();
        b.push(record(0, 1, 0.0, 1));
        b.push(record(0, 2, 0.0, 2)); // seals action 1
        let sealed_at = Instant::now();
        assert!(!b.due_at(&config, sealed_at));
        assert!(b.due_at(&config, sealed_at + Duration::from_millis(50)));
    }

    #[test]
    fn stale_and_backwards_records_are_quarantined() {
        let mut b = MicroBatcher::new();
        b.push(record(0, 5, 1.0, 1));
        b.push(record(1, 7, 4.0, 2)); // seals 5
                                      // Stale: action 5 is sealed, action 3 never existed but is below
                                      // the frontier either way.
        b.push(record(2, 5, 9.0, 3));
        b.push(record(2, 3, 9.0, 4));
        // Backwards inside the open action.
        b.push(record(3, 7, 3.5, 5));
        // In-order record still lands.
        b.push(record(4, 7, 4.5, 6));

        let dead = b.drain_dead_letters();
        assert_eq!(dead.len(), 3);
        assert_eq!(b.quarantined_total(), 3);
        assert_eq!(
            b.last_quarantine_reason(),
            Some(QuarantineReason::TimeRegression { last_time: 4.0 }),
            "the last reason survives the drain"
        );
        assert_eq!(dead[0].reason, QuarantineReason::StaleAction { frontier: 7 });
        assert_eq!(dead[1].reason, QuarantineReason::StaleAction { frontier: 7 });
        assert_eq!(dead[2].reason, QuarantineReason::TimeRegression { last_time: 4.0 });
        assert!(dead[2].to_string().contains("line 5"), "{}", dead[2]);

        b.seal_open();
        // Both pending actions ship: 5 (one tuple) and 7 (the two clean
        // tuples — the quarantined ones never entered the batch).
        let (delta, meta) = b.take_batch(1, 8).unwrap();
        assert_eq!(meta, BatchMeta { actions: 2, tuples: 3, first_action: 5, last_action: 7 });
        assert_eq!(delta.additions().users_of(0), &[0]);
        assert_eq!(delta.additions().users_of(1), &[1, 4]);
    }

    #[test]
    fn entirely_quarantined_poll_yields_no_batch() {
        // Resume behind watermark 9: every record below it is stale, the
        // batch is entirely quarantine, and no delta is cut.
        let mut b = MicroBatcher::resume(Some(9));
        for (i, a) in [3u32, 5, 9].iter().enumerate() {
            b.push(record(0, *a, 1.0, i as u64 + 1));
        }
        assert_eq!(b.quarantined_total(), 3);
        assert!(!b.has_open());
        b.seal_open();
        assert!(b.take_batch(4, 4).is_none());
        assert!(!b.due(&BatchConfig::default()));
        assert_eq!(
            b.drain_dead_letters()
                .iter()
                .filter(|d| d.reason == QuarantineReason::StaleAction { frontier: 10 })
                .count(),
            3
        );
        // The next genuinely new action flows normally.
        b.push(record(1, 10, 0.0, 4));
        b.seal_open();
        assert!(b.take_batch(4, 4).is_some());
    }

    #[test]
    fn durable_mark_covers_unshipped_records() {
        let mut b = MicroBatcher::new();
        assert_eq!(b.durable_mark(), None);
        b.push(record(0, 5, 1.0, 3));
        // Open action: the mark re-covers its first record.
        assert_eq!(b.durable_mark(), Some((30, 2)));
        b.push(record(1, 6, 1.0, 4));
        // Sealed-but-unshipped action 5 still pins the mark.
        assert_eq!(b.durable_mark(), Some((30, 2)));
        b.take_batch(0, 4).unwrap();
        // Shipped: now the open action (first record at line 4) pins it.
        assert_eq!(b.durable_mark(), Some((40, 3)));
    }
}
