//! The ingest subsystem's typed failure surface.

use cdim_actionlog::StorageError;
use cdim_core::{ExtendError, ScanError};
use cdim_serve::SnapshotError;

/// Why the follower/driver pipeline stopped.
///
/// The split mirrors offline training on purpose: everything a one-shot
/// `cdim train` over the same bytes would refuse (I/O failures, malformed
/// records) is fatal here too, so the byte-identity contract stays
/// honest. Only violations of the *append-only* contract — which offline
/// training cannot even express — are non-fatal and land in the
/// dead-letter sink instead (see
/// [`QuarantineReason`](crate::QuarantineReason)).
#[derive(Debug)]
pub enum IngestError {
    /// The log file (or checkpoint file) could not be read or written.
    Io(std::io::Error),
    /// The log shrank under the follower — it was truncated or rotated.
    /// The follower never guesses at re-synchronization: the operator
    /// decides whether to restart from the checkpoint or from scratch.
    LogTruncated {
        /// The follower's committed byte offset.
        offset: u64,
        /// The file length observed, smaller than `offset`.
        len: u64,
    },
    /// A record failed the TSV grammar or log validation, with the same
    /// line-numbered diagnostic offline loading produces.
    Parse(StorageError),
    /// The initial (empty-log) scan failed.
    Scan(ScanError),
    /// A delta could not be folded into the trained state.
    Extend(ExtendError),
    /// The checkpoint's embedded model snapshot failed to decode.
    Snapshot(SnapshotError),
    /// The checkpoint container itself is corrupt or mismatched.
    Checkpoint(String),
    /// The driver was configured inconsistently with the resumed state.
    Config(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o error: {e}"),
            IngestError::LogTruncated { offset, len } => write!(
                f,
                "action log truncated or rotated: follower is at byte {offset} but the file \
                 holds {len} bytes"
            ),
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::Scan(e) => write!(f, "initial scan failed: {e}"),
            IngestError::Extend(e) => write!(f, "applying delta: {e}"),
            IngestError::Snapshot(e) => write!(f, "checkpoint snapshot: {e}"),
            IngestError::Checkpoint(why) => write!(f, "bad checkpoint: {why}"),
            IngestError::Config(why) => write!(f, "configuration error: {why}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Parse(e) => Some(e),
            IngestError::Extend(e) => Some(e),
            IngestError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<StorageError> for IngestError {
    fn from(e: StorageError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<ExtendError> for IngestError {
    fn from(e: ExtendError) -> Self {
        IngestError::Extend(e)
    }
}

impl From<SnapshotError> for IngestError {
    fn from(e: SnapshotError) -> Self {
        IngestError::Snapshot(e)
    }
}

impl From<ScanError> for IngestError {
    fn from(e: ScanError) -> Self {
        IngestError::Scan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = IngestError::LogTruncated { offset: 100, len: 40 };
        assert!(e.to_string().contains("truncated"));
        assert!(e.to_string().contains("byte 100"));
        let e = IngestError::Checkpoint("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e: IngestError = StorageError::Parse { line: 7, message: "invalid user".into() }.into();
        assert!(e.to_string().contains("line 7"));
    }
}
