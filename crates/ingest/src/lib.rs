#![warn(missing_docs)]
//! Live action-log ingestion — the streaming front half of the online
//! retraining pipeline.
//!
//! The paper's model is *data-based*: influence is learned straight from
//! the action log, and a production log is not a frozen file but a stream
//! that grows while the model serves queries. PR 4 made retraining
//! append-only and exact ([`cdim_actionlog::ActionLogDelta`] →
//! [`cdim_core::incremental`] → [`cdim_serve::InfluenceService::publish_delta`]);
//! this crate supplies the missing subsystem that turns a live log file
//! into that delta stream automatically:
//!
//! ```text
//!   producer ──▶ actions.tsv (append-only)
//!                    │  poll, complete \n-terminated records only
//!               [LogFollower]           — tail -f semantics, typed
//!                    │  RawTuple + position    truncation detection
//!               [MicroBatcher]          — seals whole actions, cuts
//!                    │  ActionLogDelta         deltas by count/age,
//!                    │                         quarantines stragglers
//!               [IngestDriver]          — extend on the worker pool,
//!                    │                         atomic hot-swap
//!               [InfluenceService] ──▶ queries (cdim serve protocol)
//!                    │
//!               checkpoint file         — (snapshot, byte offset,
//!                                          line, watermark): restart
//!                                          without a rescan
//! ```
//!
//! **The guarantee.** For a well-formed producer (actions appended in
//! ascending external-id order, each action's records contiguous and
//! time-sorted — exactly what [`cdim_actionlog::storage::write_action_log`]
//! emits), the trained state after `finish()` is **byte-identical** to a
//! one-shot offline train over the completed file — for any interleaving
//! of partial writes, poll timings, batch boundaries, thread counts and
//! checkpoint/restart cycles. Records that violate the append-only
//! contract (a tuple for an already-retired action, a timestamp running
//! backwards inside the open action) are quarantined to a dead-letter
//! sink instead of silently corrupting the model.
//!
//! **Sliding windows.** With a [`WindowPolicy`] (bound the model by
//! action count or by external-id age behind the watermark), the driver
//! also *expires*: at every checkpoint boundary it retracts the
//! out-of-window prefix via
//! [`cdim_serve::InfluenceService::retract_delta`], and the guarantee
//! tightens to: the trained state is byte-identical to a one-shot train
//! over **just the surviving window** — again for any interleaving,
//! batch size, thread count and crash/restart schedule, including
//! restarts that straddle an expiry boundary (checkpoints carry the
//! window's tuple buffer, format v2).
//!
//! ```no_run
//! use cdim_ingest::{FollowConfig, IngestDriver};
//! use cdim_core::CreditPolicy;
//! use std::path::Path;
//!
//! # fn main() -> Result<(), cdim_ingest::IngestError> {
//! let graph = cdim_actionlog::storage::load_graph(Path::new("graph.tsv")).unwrap();
//! let mut driver = IngestDriver::open(
//!     graph,
//!     CreditPolicy::Uniform,
//!     Path::new("actions.tsv"),
//!     Path::new("model.ckpt"),
//!     FollowConfig::default(),
//! )?;
//! let service = driver.service().clone(); // hand to cdim_serve::server::spawn
//! driver.run(|report| eprintln!("{report}"))?;
//! # let _ = service;
//! # Ok(())
//! # }
//! ```

pub mod batcher;
pub mod checkpoint;
pub mod driver;
pub mod error;
pub mod follower;
mod metrics;

pub use batcher::{BatchConfig, DeadLetter, MicroBatcher, QuarantineReason};
pub use checkpoint::{Checkpoint, WindowEntry};
pub use driver::{BatchReport, FollowConfig, IngestDriver, StepReport, WindowPolicy};
pub use error::IngestError;
pub use follower::{LogFollower, Record};
