//! The ingest subsystem's load-bearing contract, end to end: tailing a
//! log written in arbitrary increments — mid-record writes, any batch
//! thresholds, any number of checkpoint/restart cycles — yields a trained
//! snapshot **byte-identical** to one-shot offline training on the
//! completed file, at every thread count.

use cdim_actionlog::storage::{read_action_log, write_action_log};
use cdim_actionlog::{ActionLog, ActionLogBuilder};
use cdim_core::{scan_with, CreditPolicy};
use cdim_graph::{DirectedGraph, GraphBuilder};
use cdim_ingest::{BatchConfig, FollowConfig, IngestDriver, IngestError, WindowPolicy};
use cdim_serve::ModelSnapshot;
use cdim_util::Parallelism;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn tempdir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cdim_ingest_equiv_{tag}_{}_{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn append_bytes(path: &Path, data: &[u8]) {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path).unwrap();
    f.write_all(data).unwrap();
}

/// Offline reference: parse the *serialized* bytes back (so both sides
/// see the identical float spellings) and scan them one-shot.
fn offline_snapshot(
    graph: &DirectedGraph,
    serialized: &[u8],
    policy: &CreditPolicy,
    lambda: f64,
) -> Vec<u8> {
    let log = read_action_log(serialized, graph.num_nodes()).unwrap();
    let store = scan_with(graph, &log, policy, lambda, Parallelism::single()).unwrap();
    ModelSnapshot::from_store(store).to_bytes()
}

/// Streams `serialized` into a followed file according to the given
/// chunking/restart schedule and returns the final trained snapshot.
#[allow(clippy::too_many_arguments)]
fn follow_to_completion(
    tag: &str,
    graph: &DirectedGraph,
    policy: &CreditPolicy,
    serialized: &[u8],
    cuts: &[usize],
    restarts: &[bool],
    batch: BatchConfig,
    lambda: f64,
    threads: usize,
    window: WindowPolicy,
) -> Vec<u8> {
    let dir = tempdir(tag);
    let log_path = dir.join("actions.tsv");
    let ckpt_path = dir.join("model.ckpt");
    let config = FollowConfig {
        batch,
        lambda: Some(lambda),
        parallelism: Parallelism::fixed(threads),
        checkpoint_every: 1,
        window,
        ..Default::default()
    };
    let open = |lambda_cfg: Option<f64>| {
        IngestDriver::open(
            graph.clone(),
            policy.clone(),
            &log_path,
            &ckpt_path,
            FollowConfig { lambda: lambda_cfg, ..config },
        )
        .unwrap()
    };

    let mut driver = open(Some(lambda));
    // Chunk boundaries may fall anywhere, including mid-record.
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (serialized.len() + 1)).collect();
    bounds.push(serialized.len());
    bounds.sort_unstable();
    let mut written = 0usize;
    for (i, &end) in bounds.iter().enumerate() {
        append_bytes(&log_path, &serialized[written..end]);
        written = end;
        driver.step().unwrap();
        // A scheduled restart drops the driver cold — buffered records
        // and all, NO parting checkpoint — and reopens from whatever the
        // last publish-time auto-checkpoint recorded (or from scratch if
        // nothing was ever published). This is the crash path: the
        // durable mark must re-cover everything unfolded.
        if restarts.get(i).copied().unwrap_or(false) {
            drop(driver);
            // The explicit λ matters when the crash predates the first
            // publish (no checkpoint on disk → a fresh, empty start).
            driver = open(Some(lambda));
        }
    }
    let report = driver.finish().unwrap();
    assert!(
        report.dead_letters.is_empty(),
        "a well-formed producer must quarantine nothing: {:?}",
        report.dead_letters
    );
    let bytes = driver.snapshot().to_bytes();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

proptest! {
    /// The acceptance-criterion property: random dataset, random byte
    /// chunking, random batch size, random restart schedule, threads
    /// 1 and 8, both policies, λ ∈ {0, 0.001}.
    #[test]
    fn streamed_training_is_byte_identical_to_offline(
        edges in proptest::collection::vec((0u32..9, 0u32..9), 0..40),
        events in proptest::collection::vec((0u32..9, 0u32..6, 0u64..20), 1..60),
        cuts in proptest::collection::vec(0usize..4096, 0..8),
        restarts in proptest::collection::vec(proptest::bool::ANY, 0..9),
        batch_actions in 1usize..5,
        time_aware in proptest::bool::ANY,
        lambda_on in proptest::bool::ANY,
    ) {
        let graph = GraphBuilder::new(9).edges(edges).build();
        let mut b = ActionLogBuilder::new(9);
        for &(u, a, t) in &events {
            b.push(u, a, t as f64);
        }
        let log = b.build();
        let policy = if time_aware {
            CreditPolicy::time_aware(&graph, &log)
        } else {
            CreditPolicy::Uniform
        };
        let lambda = if lambda_on { 0.001 } else { 0.0 };
        let mut serialized = Vec::new();
        write_action_log(&log, &mut serialized).unwrap();

        let expected = offline_snapshot(&graph, &serialized, &policy, lambda);
        let batch = BatchConfig { max_actions: batch_actions, ..Default::default() };
        for threads in [1usize, 8] {
            let got = follow_to_completion(
                "prop", &graph, &policy, &serialized, &cuts, &restarts, batch, lambda, threads,
                WindowPolicy::Unbounded,
            );
            prop_assert_eq!(
                &got,
                &expected,
                "diverged at {} threads, batch {}, {} cuts, restarts {:?}",
                threads,
                batch_actions,
                cuts.len(),
                restarts
            );
        }
    }
}

proptest! {
    /// The sliding-window acceptance property: same adversarial schedule
    /// as above — random chunking, batching, crash/restart points that
    /// may straddle expiry boundaries — but with a window policy active.
    /// The final trained state must be byte-identical to a one-shot scan
    /// of **just the surviving window**, at 1 and 8 threads, for both
    /// policies, count- and age-based windows, λ ∈ {0, 0.001}.
    #[test]
    fn windowed_streaming_is_byte_identical_to_window_scan(
        edges in proptest::collection::vec((0u32..9, 0u32..9), 0..40),
        events in proptest::collection::vec((0u32..9, 0u32..6, 0u64..20), 1..60),
        cuts in proptest::collection::vec(0usize..4096, 0..8),
        restarts in proptest::collection::vec(proptest::bool::ANY, 0..9),
        batch_actions in 1usize..5,
        window_by_age in proptest::bool::ANY,
        window_size in 0u32..5,
        time_aware in proptest::bool::ANY,
        lambda_on in proptest::bool::ANY,
    ) {
        let graph = GraphBuilder::new(9).edges(edges).build();
        let mut b = ActionLogBuilder::new(9);
        for &(u, a, t) in &events {
            b.push(u, a, t as f64);
        }
        let log = b.build();
        // The fixed-policy contract: a time-aware policy is learned from
        // the full log once and stays fixed on both sides of the window.
        let policy = if time_aware {
            CreditPolicy::time_aware(&graph, &log)
        } else {
            CreditPolicy::Uniform
        };
        let lambda = if lambda_on { 0.001 } else { 0.0 };
        let window = if window_by_age {
            WindowPolicy::WatermarkAge(window_size)
        } else {
            WindowPolicy::Actions(window_size as usize)
        };
        let mut serialized = Vec::new();
        write_action_log(&log, &mut serialized).unwrap();

        // Reference: re-parse the serialized bytes, drop what the policy
        // will have expired by the final watermark, scan single-threaded.
        let parsed = read_action_log(&serialized[..], graph.num_nodes()).unwrap();
        let expire = match window {
            WindowPolicy::Actions(n) => parsed.num_actions().saturating_sub(n),
            WindowPolicy::WatermarkAge(age) => {
                let mark = parsed.external_id(parsed.num_actions() as u32 - 1);
                let oldest_kept = mark.saturating_sub(age);
                (0..parsed.num_actions() as u32)
                    .filter(|&a| parsed.external_id(a) < oldest_kept)
                    .count()
            }
            WindowPolicy::Unbounded => 0,
        };
        let surviving = parsed.split_off_prefix(expire).1;
        let store =
            scan_with(&graph, &surviving, &policy, lambda, Parallelism::single()).unwrap();
        let expected = ModelSnapshot::from_store(store).to_bytes();

        let batch = BatchConfig { max_actions: batch_actions, ..Default::default() };
        for threads in [1usize, 8] {
            let got = follow_to_completion(
                "window", &graph, &policy, &serialized, &cuts, &restarts, batch, lambda,
                threads, window,
            );
            prop_assert_eq!(
                &got,
                &expected,
                "diverged at {} threads under {:?}, batch {}, {} cuts, restarts {:?}",
                threads,
                window,
                batch_actions,
                cuts.len(),
                restarts
            );
        }
    }
}

/// Deterministic rotation scenario: the log shrinks, the follower
/// surfaces the typed error, and — once the file is made whole again — a
/// fresh driver resumes from the checkpoint and still converges to the
/// offline answer.
#[test]
fn rotation_surfaces_then_checkpoint_recovers() {
    let dir = tempdir("rotation");
    let log_path = dir.join("actions.tsv");
    let ckpt_path = dir.join("model.ckpt");
    let graph = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).build();
    let full = "0\t1\t0.0\n1\t1\t1.0\n2\t2\t0.0\n3\t2\t1.0\n4\t3\t0.0\n";
    let config = FollowConfig { lambda: Some(0.001), ..Default::default() };

    // Phase 1: the first two actions arrive and the first is published.
    append_bytes(&log_path, &full.as_bytes()[..32]);
    let mut driver =
        IngestDriver::open(graph.clone(), CreditPolicy::Uniform, &log_path, &ckpt_path, config)
            .unwrap();
    driver.step().unwrap();
    assert!(driver.snapshot().num_actions() >= 1);

    // Phase 2: rotation — the file is replaced by something shorter.
    std::fs::write(&log_path, "0\t9\t0.0\n").unwrap();
    match driver.step() {
        Err(IngestError::LogTruncated { .. }) => {}
        other => panic!("expected LogTruncated, got {other:?}"),
    }
    drop(driver);

    // Phase 3: the operator restores the full file; a fresh driver
    // resumes from the checkpoint, skipping everything already folded.
    std::fs::write(&log_path, full).unwrap();
    let mut driver = IngestDriver::open(
        graph.clone(),
        CreditPolicy::Uniform,
        &log_path,
        &ckpt_path,
        FollowConfig::default(),
    )
    .unwrap();
    driver.finish().unwrap();

    let offline = {
        let log = read_action_log(full.as_bytes(), graph.num_nodes()).unwrap();
        let store =
            scan_with(&graph, &log, &CreditPolicy::Uniform, 0.001, Parallelism::fixed(2)).unwrap();
        ModelSnapshot::from_store(store).to_bytes()
    };
    assert_eq!(driver.snapshot().to_bytes(), offline);
    std::fs::remove_dir_all(&dir).ok();
}

/// Streaming a dataset-preset log (the same data the CLI pipeline uses)
/// through small batches equals offline training — a heavier, fixed
/// smoke on top of the random property.
#[test]
fn preset_log_streams_to_offline_bytes() {
    let ds = cdim_datagen::presets::tiny().generate();
    let mut serialized = Vec::new();
    write_action_log(&ds.log, &mut serialized).unwrap();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let expected = offline_snapshot(&ds.graph, &serialized, &policy, 0.001);
    // Thirds of the byte stream, batches of 4 actions, one restart.
    let cuts = [serialized.len() / 3, 2 * serialized.len() / 3];
    let restarts = [false, true, false];
    let batch = BatchConfig { max_actions: 4, ..Default::default() };
    for threads in [1usize, 8] {
        let got = follow_to_completion(
            "preset",
            &ds.graph,
            &policy,
            &serialized,
            &cuts,
            &restarts,
            batch,
            0.001,
            threads,
            WindowPolicy::Unbounded,
        );
        assert_eq!(got, expected, "preset stream diverged at {threads} threads");
    }
}

/// An `ActionLog` built through the growing-universe path and widened to
/// the graph's node count trains identically to the fixed-universe path
/// (the delta side of the auto-growing satellite).
#[test]
fn growing_universe_log_trains_identically() {
    let ds = cdim_datagen::presets::tiny().generate();
    let mut serialized = Vec::new();
    write_action_log(&ds.log, &mut serialized).unwrap();
    let fixed = read_action_log(&serialized[..], ds.graph.num_nodes()).unwrap();
    let grown = cdim_actionlog::storage::read_action_log_growing(&serialized[..])
        .unwrap()
        .widen_users(ds.graph.num_nodes());
    assert_eq!(grown, fixed);
    let scan = |log: &ActionLog| {
        scan_with(&ds.graph, log, &CreditPolicy::Uniform, 0.0, Parallelism::single())
            .unwrap()
            .dump()
    };
    assert!(scan(&grown) == scan(&fixed));
}
