#![warn(missing_docs)]
//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! This workspace builds without network access, so the real `criterion`
//! crate cannot be fetched. The eight `crates/bench/benches/*.rs` targets
//! only use a narrow slice of its API — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`], [`BatchSize`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — and this crate reimplements exactly that
//! slice over `std::time::Instant`.
//!
//! Semantics: each benchmark is warmed up once, then timed for the group's
//! configured sample count (default 10, override with the
//! `CDIM_BENCH_SAMPLES` environment variable). Mean and minimum wall-clock
//! time per iteration are printed, plus throughput when the group set one.
//! No statistics, plots, or baseline comparisons — swap the workspace
//! `criterion` entry back to the crates.io package to get those.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How [`Bencher::iter_batched`] should batch setup outputs.
///
/// The shim times every routine invocation individually, so the variants
/// only exist for signature compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Many setup outputs per batch (cheap setup).
    SmallInput,
    /// One setup output per batch (expensive setup or large values).
    LargeInput,
    /// Re-run setup before every single iteration.
    PerIteration,
}

/// Input-size annotation for a benchmark group, used to report throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter value,
/// e.g. `BenchmarkId::new("lambda", 0.01)` renders as `lambda/0.01`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to every benchmark closure.
///
/// Collects one wall-clock sample per configured sample slot; the owning
/// group prints the aggregate.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self { samples, times: Vec::with_capacity(samples) }
    }

    /// Time `routine` once per sample (plus one untimed warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing sample-count and
/// throughput configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration input size so results include throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.criterion.sample_override.unwrap_or(self.sample_size);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.times);
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group. (All reporting already happened per-benchmark.)
    pub fn finish(self) {}

    fn report(&self, id: &str, times: &[Duration]) {
        let full = format!("{}/{}", self.name, id);
        if times.is_empty() {
            println!("{full:<48} time: [no samples]");
            return;
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{full:<48} time: [mean {} | min {} | {} samples]",
            fmt_duration(mean),
            fmt_duration(min),
            times.len()
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                line.push_str(&format!(" thrpt: {per_sec:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                line.push_str(&format!(" thrpt: {per_sec:.0} B/s"));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// The top-level benchmark driver, constructed by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    sample_override: Option<usize>,
}

impl Criterion {
    /// Start a named benchmark group with default configuration
    /// (10 samples, no throughput annotation).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_override = std::env::var("CDIM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1));
        self.sample_override = sample_override;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("base", f);
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group, mirroring the real
/// criterion macro: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups, mirroring the real criterion
/// macro: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
