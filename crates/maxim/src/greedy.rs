//! Algorithm 1: the plain greedy (1 − 1/e)-approximation.
//!
//! Each round evaluates σ(S + w) for every remaining candidate and keeps
//! the best. With an MC-backed oracle this is the quadratically expensive
//! baseline whose running time Fig 7 reports in tens of hours; CELF
//! ([`crate::celf`]) produces identical selections far faster.

use crate::oracle::{Selection, SpreadOracle};
use cdim_graph::NodeId;

/// Runs plain greedy for `k` seeds over all nodes of the oracle's universe.
pub fn greedy_select<O: SpreadOracle>(oracle: &O, k: usize) -> Selection {
    let candidates: Vec<NodeId> = (0..oracle.universe() as NodeId).collect();
    greedy_select_from(oracle, k, &candidates)
}

/// Runs plain greedy restricted to `candidates`.
///
/// Ties are broken toward the smaller node id, so results are
/// deterministic for deterministic oracles.
pub fn greedy_select_from<O: SpreadOracle>(
    oracle: &O,
    k: usize,
    candidates: &[NodeId],
) -> Selection {
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut gains: Vec<f64> = Vec::with_capacity(k);
    let mut remaining: Vec<NodeId> = candidates.to_vec();
    remaining.sort_unstable();
    remaining.dedup();
    let mut evaluations = 0usize;
    let mut current_spread = 0.0;
    let mut scratch: Vec<NodeId> = Vec::with_capacity(k + 1);

    while seeds.len() < k && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (idx, &w) in remaining.iter().enumerate() {
            scratch.clear();
            scratch.extend_from_slice(&seeds);
            scratch.push(w);
            let s = oracle.spread(&scratch);
            evaluations += 1;
            let gain = s - current_spread;
            // Strict improvement keeps the smaller id on ties.
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((idx, gain));
            }
        }
        let (idx, gain) = best.expect("remaining is nonempty");
        // `remove` (not `swap_remove`) keeps `remaining` sorted, so the
        // strict-improvement rule above keeps breaking ties toward the
        // smallest id in later rounds too.
        let w = remaining.remove(idx);
        seeds.push(w);
        gains.push(gain);
        current_spread += gain;
    }

    Selection { seeds, marginal_gains: gains, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AdditiveOracle;

    #[test]
    fn picks_top_values_in_order() {
        let o = AdditiveOracle { values: vec![1.0, 5.0, 3.0, 4.0] };
        let sel = greedy_select(&o, 2);
        assert_eq!(sel.seeds, vec![1, 3]);
        assert_eq!(sel.marginal_gains, vec![5.0, 4.0]);
    }

    #[test]
    fn evaluation_count_is_quadraticish() {
        let o = AdditiveOracle { values: vec![1.0; 10] };
        let sel = greedy_select(&o, 3);
        // Round sizes: 10 + 9 + 8.
        assert_eq!(sel.evaluations, 27);
    }

    #[test]
    fn ties_break_to_smaller_id() {
        let o = AdditiveOracle { values: vec![2.0, 2.0, 2.0] };
        let sel = greedy_select(&o, 2);
        assert_eq!(sel.seeds, vec![0, 1]);
    }

    #[test]
    fn k_larger_than_universe() {
        let o = AdditiveOracle { values: vec![1.0, 2.0] };
        let sel = greedy_select(&o, 5);
        assert_eq!(sel.seeds.len(), 2);
    }

    #[test]
    fn candidate_restriction() {
        let o = AdditiveOracle { values: vec![9.0, 1.0, 5.0] };
        let sel = greedy_select_from(&o, 1, &[1, 2]);
        assert_eq!(sel.seeds, vec![2]);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let o = AdditiveOracle { values: vec![1.0] };
        let sel = greedy_select(&o, 0);
        assert!(sel.is_empty());
        assert_eq!(sel.evaluations, 0);
    }
}
