//! The spread-oracle abstraction.
//!
//! Every seed-selection strategy in this workspace asks one question of a
//! model: "what is σ(S)?". Wrapping that in a trait lets the greedy and
//! CELF selectors run unchanged against Monte-Carlo IC/LT estimators, the
//! MIA/LDAG heuristics, or the credit-distribution model.

use cdim_diffusion::mc::CascadeSampler;
use cdim_diffusion::MonteCarloEstimator;
use cdim_graph::NodeId;

/// A model that can evaluate the expected influence spread of a seed set.
pub trait SpreadOracle {
    /// Expected spread σ(S). Must be monotone in `S` for the greedy
    /// guarantee to hold; submodularity additionally justifies CELF.
    fn spread(&self, seeds: &[NodeId]) -> f64;

    /// Size of the candidate universe (node ids are `0..universe()`).
    fn universe(&self) -> usize;
}

impl<M: CascadeSampler> SpreadOracle for MonteCarloEstimator<M> {
    fn spread(&self, seeds: &[NodeId]) -> f64 {
        MonteCarloEstimator::spread(self, seeds)
    }

    fn universe(&self) -> usize {
        self.sampler().num_nodes()
    }
}

/// Outcome of a seed-selection run.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Chosen seeds, in selection order.
    pub seeds: Vec<NodeId>,
    /// Marginal gain recorded when each seed was chosen (same order).
    pub marginal_gains: Vec<f64>,
    /// Number of oracle spread evaluations performed — the cost driver for
    /// MC-backed oracles (Fig 7) and the quantity CELF reduces.
    pub evaluations: usize,
}

impl Selection {
    /// Total spread claimed by the selection (sum of marginal gains, which
    /// telescopes to σ(S) for an exact oracle).
    pub fn total_gain(&self) -> f64 {
        self.marginal_gains.iter().sum()
    }

    /// Number of seeds selected.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no seed was selected.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

/// A deterministic, additive oracle for tests: σ(S) = Σ_{u∈S} value[u],
/// deduplicated. Monotone and submodular (modular, in fact).
#[cfg(any(test, feature = "test-oracles"))]
#[derive(Clone, Debug)]
pub struct AdditiveOracle {
    /// Per-node value.
    pub values: Vec<f64>,
}

#[cfg(any(test, feature = "test-oracles"))]
impl SpreadOracle for AdditiveOracle {
    fn spread(&self, seeds: &[NodeId]) -> f64 {
        let mut seen = std::collections::HashSet::new();
        seeds.iter().filter(|&&s| seen.insert(s)).map(|&s| self.values[s as usize]).sum()
    }

    fn universe(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_oracle_sums_and_dedups() {
        let o = AdditiveOracle { values: vec![1.0, 2.0, 4.0] };
        assert_eq!(o.spread(&[0, 2]), 5.0);
        assert_eq!(o.spread(&[1, 1]), 2.0);
        assert_eq!(o.universe(), 3);
    }

    #[test]
    fn selection_total_gain() {
        let s = Selection { seeds: vec![3, 1], marginal_gains: vec![4.0, 2.0], evaluations: 10 };
        assert_eq!(s.total_gain(), 6.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
