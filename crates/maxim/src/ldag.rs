//! LDAG — local-DAG spread heuristic for the Linear Threshold model.
//!
//! Chen, Yuan & Zhang (ICDM 2010): computing LT spread on general graphs is
//! #P-hard, but on a DAG activation probabilities are *linear*:
//! `ap(u) = Σ_w ap(w)·w_{w,u}`. For every node `v`, LDAG(v, θ) collects the
//! nodes whose influence on `v` is at least θ and evaluates the linear
//! recurrence over that local DAG; σ_LDAG(S) = Σ_v ap(v).
//!
//! DAG construction follows the greedy max-influence expansion of the
//! original paper; we keep an edge `(u, w)` only when `w` entered the DAG
//! before `u` (influence decreases along insertion order), which guarantees
//! acyclicity — the same device the published implementation uses.

use crate::oracle::SpreadOracle;
use cdim_diffusion::EdgeProbabilities;
use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::{FxHashMap, OrdF64};
use std::collections::BinaryHeap;

/// LDAG configuration.
#[derive(Clone, Copy, Debug)]
pub struct LdagConfig {
    /// Influence threshold θ for inclusion in a local DAG. Chen et al.
    /// recommend `1/320`.
    pub theta: f64,
}

impl Default for LdagConfig {
    fn default() -> Self {
        LdagConfig { theta: 1.0 / 320.0 }
    }
}

/// One local DAG, stored in insertion (descending-influence) order.
#[derive(Clone, Debug)]
struct LocalDag {
    /// Global ids; `nodes[0]` is the root `v`.
    nodes: Vec<NodeId>,
    /// CSR of in-edges per local node: `(source_local, weight)` pairs where
    /// the source was inserted *after* the target.
    in_offsets: Vec<usize>,
    in_edges: Vec<(u32, f64)>,
}

/// Precomputed LDAG spread oracle.
#[derive(Clone, Debug)]
pub struct LdagOracle {
    dags: Vec<LocalDag>,
    num_nodes: usize,
}

impl LdagOracle {
    /// Builds `LDAG(v, θ)` for every node `v`.
    pub fn build(graph: &DirectedGraph, weights: &EdgeProbabilities, config: LdagConfig) -> Self {
        assert!(config.theta > 0.0 && config.theta <= 1.0, "theta must be in (0, 1]");
        let n = graph.num_nodes();
        let mut inf = vec![0.0f64; n];
        let mut selected = vec![u32::MAX; n]; // local index once inserted
        let mut touched: Vec<NodeId> = Vec::new();

        let dags = (0..n as NodeId)
            .map(|root| {
                for &t in &touched {
                    inf[t as usize] = 0.0;
                    selected[t as usize] = u32::MAX;
                }
                touched.clear();

                // Max-product expansion toward the root over in-edges.
                let mut heap: BinaryHeap<(OrdF64, NodeId)> = BinaryHeap::new();
                inf[root as usize] = 1.0;
                touched.push(root);
                heap.push((OrdF64(1.0), root));
                let mut order: Vec<NodeId> = Vec::new();

                while let Some((OrdF64(f), w)) = heap.pop() {
                    if selected[w as usize] != u32::MAX || f < inf[w as usize] {
                        continue; // already inserted or stale
                    }
                    selected[w as usize] = order.len() as u32;
                    order.push(w);
                    let range = graph.in_range(w);
                    let sources = graph.in_sources();
                    for pos in range {
                        let u = sources[pos];
                        if selected[u as usize] != u32::MAX {
                            continue;
                        }
                        let cand = f * weights.in_(pos);
                        if cand >= config.theta && cand > inf[u as usize] {
                            if inf[u as usize] == 0.0 {
                                touched.push(u);
                            }
                            inf[u as usize] = cand;
                            heap.push((OrdF64(cand), u));
                        }
                    }
                }

                // Collect kept edges: (u → w) with w inserted before u,
                // grouped by target w.
                let mut by_target: FxHashMap<u32, Vec<(u32, f64)>> = FxHashMap::default();
                for (lu, &u) in order.iter().enumerate() {
                    let range = graph.out_range(u);
                    let targets = graph.out_targets();
                    for pos in range {
                        let w = targets[pos];
                        let lw = selected[w as usize];
                        if lw != u32::MAX && lw < lu as u32 {
                            by_target.entry(lw).or_default().push((lu as u32, weights.out(pos)));
                        }
                    }
                }
                let mut in_offsets = Vec::with_capacity(order.len() + 1);
                let mut in_edges = Vec::new();
                in_offsets.push(0);
                for lw in 0..order.len() as u32 {
                    if let Some(list) = by_target.get(&lw) {
                        in_edges.extend_from_slice(list);
                    }
                    in_offsets.push(in_edges.len());
                }

                LocalDag { nodes: order, in_offsets, in_edges }
            })
            .collect();

        LdagOracle { dags, num_nodes: n }
    }

    /// Total number of local-DAG node entries (memory proxy).
    pub fn total_size(&self) -> usize {
        self.dags.iter().map(|d| d.nodes.len()).sum()
    }

    /// ap(root) under seed set `seed_mask` via the linear recurrence.
    fn root_ap(&self, root: NodeId, seed_mask: &[bool]) -> f64 {
        let dag = &self.dags[root as usize];
        let len = dag.nodes.len();
        let mut ap = vec![0.0f64; len];
        // Reverse insertion order: influencers before influencees.
        for i in (0..len).rev() {
            let g = dag.nodes[i];
            ap[i] = if seed_mask[g as usize] {
                1.0
            } else {
                dag.in_edges[dag.in_offsets[i]..dag.in_offsets[i + 1]]
                    .iter()
                    .map(|&(src, w)| ap[src as usize] * w)
                    .sum()
            };
        }
        if len == 0 {
            0.0
        } else {
            ap[0]
        }
    }
}

impl SpreadOracle for LdagOracle {
    fn spread(&self, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        let mut mask = vec![false; self.num_nodes];
        for &s in seeds {
            mask[s as usize] = true;
        }
        (0..self.num_nodes as NodeId).map(|v| self.root_ap(v, &mask)).sum()
    }

    fn universe(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celf::celf_select;
    use cdim_diffusion::{LtModel, McConfig, MonteCarloEstimator};
    use cdim_graph::GraphBuilder;

    #[test]
    fn exact_on_a_chain() {
        // LT on a chain: ap(1) = w, ap(2) = w², spread = 1 + w + w².
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let w = EdgeProbabilities::uniform(&g, 0.5);
        let oracle = LdagOracle::build(&g, &w, LdagConfig { theta: 0.01 });
        let s = oracle.spread(&[0]);
        assert!((s - 1.75).abs() < 1e-12, "spread = {s}");
    }

    #[test]
    fn matches_monte_carlo_on_dag() {
        // On a true DAG, the linear recurrence is the exact LT spread.
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let mut w = EdgeProbabilities::from_fn(&g, |_, _| 0.4);
        w.normalize_in_weights(&g);
        let oracle = LdagOracle::build(&g, &w, LdagConfig { theta: 1e-4 });
        let exact = oracle.spread(&[0]);
        let lt = LtModel::new(&g, &w);
        let mc = MonteCarloEstimator::new(lt, McConfig::quick(60_000)).spread(&[0]);
        assert!((exact - mc).abs() < 0.02, "ldag {exact} vs mc {mc}");
    }

    #[test]
    fn theta_truncates_far_influence() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let w = EdgeProbabilities::uniform(&g, 0.5);
        let oracle = LdagOracle::build(&g, &w, LdagConfig { theta: 0.3 });
        // Two-hop influence 0.25 < θ: node 0 is not in LDAG(2).
        let s = oracle.spread(&[0]);
        assert!((s - 1.5).abs() < 1e-12, "spread = {s}");
    }

    #[test]
    fn seeds_count_themselves() {
        let g = GraphBuilder::new(3).edges([(0, 1)]).build();
        let w = EdgeProbabilities::uniform(&g, 0.0);
        let oracle = LdagOracle::build(&g, &w, LdagConfig::default());
        assert_eq!(oracle.spread(&[0, 2]), 2.0);
    }

    #[test]
    fn monotone_in_seeds() {
        let g =
            GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3)]).build();
        let mut w = EdgeProbabilities::from_fn(&g, |u, v| ((u + v) % 3 + 1) as f64 * 0.25);
        w.normalize_in_weights(&g);
        let oracle = LdagOracle::build(&g, &w, LdagConfig::default());
        let mut prev = 0.0;
        let mut seeds = Vec::new();
        for u in 0..5u32 {
            seeds.push(u);
            let s = oracle.spread(&seeds);
            assert!(s >= prev - 1e-12, "not monotone at {u}");
            prev = s;
        }
    }

    #[test]
    fn celf_picks_the_hub_on_a_star() {
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (0, 3)]).build();
        let w = EdgeProbabilities::uniform(&g, 0.9);
        let oracle = LdagOracle::build(&g, &w, LdagConfig::default());
        let sel = celf_select(&oracle, 1);
        assert_eq!(sel.seeds, vec![0]);
    }
}
