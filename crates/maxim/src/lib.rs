#![warn(missing_docs)]
//! Influence-maximization algorithms.
//!
//! Problem 1 of the paper: given a weighted social graph and a propagation
//! model `m`, find `S` with `|S| = k` maximizing σ_m(S). The problem is
//! NP-hard, but σ_m is monotone and submodular, so the greedy algorithm is
//! a (1 − 1/e)-approximation (Nemhauser et al.).
//!
//! * [`oracle`] — the [`SpreadOracle`] abstraction every selector runs
//!   against (Monte-Carlo IC/LT, MIA, LDAG, and — in `cdim-core` — the
//!   credit-distribution model all implement it);
//! * [`greedy`] — Algorithm 1 (plain greedy);
//! * [`celf`] — the CELF lazy-forward optimization of Leskovec et al.,
//!   which exploits submodularity to skip re-evaluations (§5.3);
//! * [`heuristics`] — HighDegree, PageRank and Random baselines (Fig 6);
//! * [`mia`] — the maximum-influence-arborescence spread heuristic behind
//!   PMIA (Chen et al., KDD 2010), used where MC-greedy is infeasible;
//! * [`ldag`] — the local-DAG spread heuristic for LT (Chen et al.,
//!   ICDM 2010).

pub mod celf;
pub mod greedy;
pub mod heuristics;
pub mod ldag;
pub mod mia;
pub mod oracle;

pub use celf::celf_select;
pub use greedy::greedy_select;
pub use heuristics::{high_degree_seeds, pagerank_seeds, random_seeds};
pub use ldag::LdagOracle;
pub use mia::MiaOracle;
pub use oracle::{Selection, SpreadOracle};
