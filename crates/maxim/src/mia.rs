//! MIA — Maximum Influence Arborescence spread heuristic for IC.
//!
//! Chen, Wang & Wang (KDD 2010) approximate IC influence by restricting
//! propagation to *maximum influence paths* (MIPs): for every node `v`, the
//! in-arborescence `MIIA(v, θ)` contains, for each `u`, the single highest-
//! probability path `u → v`, kept only if its propagation probability is at
//! least `θ`. Activation probabilities inside an arborescence factorize
//! exactly, so σ_MIA(S) = Σ_v ap(v | MIIA(v), S) is computable in linear
//! time per arborescence — no Monte-Carlo needed. σ_MIA is monotone and
//! submodular, so greedy/CELF applies.
//!
//! The paper's experiments use the PMIA variant (arborescences re-grown to
//! avoid paths through already-chosen seeds); we keep arborescences static
//! and recompute activation probabilities exactly within them. Chen et al.
//! report the two produce nearly identical seed sets; the deviation is
//! recorded in DESIGN.md.

use crate::oracle::SpreadOracle;
use cdim_diffusion::EdgeProbabilities;
use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// MIA configuration.
#[derive(Clone, Copy, Debug)]
pub struct MiaConfig {
    /// Path-probability threshold θ; paths weaker than this are ignored.
    /// Chen et al. recommend `1/320`.
    pub theta: f64,
}

impl Default for MiaConfig {
    fn default() -> Self {
        MiaConfig { theta: 1.0 / 320.0 }
    }
}

/// One maximum-influence in-arborescence, stored leaves-first.
#[derive(Clone, Debug)]
struct Arborescence {
    /// Global node ids, in processing order (leaves first, root last).
    nodes: Vec<NodeId>,
    /// Local index of each node's parent (next hop toward the root);
    /// `u32::MAX` for the root.
    parent: Vec<u32>,
    /// Probability of the edge from the node to its parent.
    edge_prob: Vec<f64>,
}

/// Precomputed MIA spread oracle.
#[derive(Clone, Debug)]
pub struct MiaOracle {
    arbs: Vec<Arborescence>,
    num_nodes: usize,
}

impl MiaOracle {
    /// Builds `MIIA(v, θ)` for every node `v`.
    pub fn build(graph: &DirectedGraph, probs: &EdgeProbabilities, config: MiaConfig) -> Self {
        assert!(config.theta > 0.0 && config.theta <= 1.0, "theta must be in (0, 1]");
        let n = graph.num_nodes();
        let max_dist = -config.theta.ln();

        // Dijkstra scratch, shared across roots.
        let mut dist = vec![f64::INFINITY; n];
        let mut parent_global = vec![u32::MAX; n];
        let mut parent_prob = vec![0.0f64; n];
        let mut touched: Vec<NodeId> = Vec::new();

        let arbs = (0..n as NodeId)
            .map(|root| {
                // Backwards Dijkstra from `root` along in-edges with edge
                // length -ln(p); a path's length is -ln of its propagation
                // probability, so the shortest path is the MIP.
                for &t in &touched {
                    dist[t as usize] = f64::INFINITY;
                    parent_global[t as usize] = u32::MAX;
                    parent_prob[t as usize] = 0.0;
                }
                touched.clear();

                let mut heap: BinaryHeap<(Reverse<OrdF64>, NodeId)> = BinaryHeap::new();
                dist[root as usize] = 0.0;
                touched.push(root);
                heap.push((Reverse(OrdF64(0.0)), root));
                let mut order: Vec<NodeId> = Vec::new();

                while let Some((Reverse(OrdF64(d)), w)) = heap.pop() {
                    if d > dist[w as usize] {
                        continue; // stale entry
                    }
                    order.push(w);
                    let range = graph.in_range(w);
                    let sources = graph.in_sources();
                    for pos in range {
                        let u = sources[pos];
                        let p = probs.in_(pos);
                        if p <= 0.0 {
                            continue;
                        }
                        let cand = d - p.ln();
                        if cand <= max_dist && cand < dist[u as usize] {
                            if dist[u as usize].is_infinite() {
                                touched.push(u);
                            }
                            dist[u as usize] = cand;
                            parent_global[u as usize] = w;
                            parent_prob[u as usize] = p;
                            heap.push((Reverse(OrdF64(cand)), u));
                        }
                    }
                }

                // Leaves-first order = reverse pop order; remap parents to
                // local indices.
                order.reverse();
                let mut local = cdim_util::FxHashMap::default();
                local.reserve(order.len());
                for (i, &g) in order.iter().enumerate() {
                    local.insert(g, i as u32);
                }
                let parent: Vec<u32> = order
                    .iter()
                    .map(|&g| {
                        let pg = parent_global[g as usize];
                        if pg == u32::MAX {
                            u32::MAX
                        } else {
                            local[&pg]
                        }
                    })
                    .collect();
                let edge_prob: Vec<f64> = order.iter().map(|&g| parent_prob[g as usize]).collect();
                Arborescence { nodes: order, parent, edge_prob }
            })
            .collect();

        MiaOracle { arbs, num_nodes: n }
    }

    /// Total number of arborescence entries (memory proxy).
    pub fn total_size(&self) -> usize {
        self.arbs.iter().map(|a| a.nodes.len()).sum()
    }

    /// Activation probability of `root` given `seed_mask`.
    fn root_ap(&self, root: NodeId, seed_mask: &[bool]) -> f64 {
        let arb = &self.arbs[root as usize];
        let len = arb.nodes.len();
        // prod[i] = Π over processed children of (1 - ap(child)·p(child→i)).
        let mut prod = vec![1.0f64; len];
        let mut ap_root = 0.0;
        for i in 0..len {
            let g = arb.nodes[i];
            let ap = if seed_mask[g as usize] { 1.0 } else { 1.0 - prod[i] };
            match arb.parent[i] {
                u32::MAX => ap_root = ap,
                pi => prod[pi as usize] *= 1.0 - ap * arb.edge_prob[i],
            }
        }
        ap_root
    }
}

impl SpreadOracle for MiaOracle {
    fn spread(&self, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        let mut mask = vec![false; self.num_nodes];
        for &s in seeds {
            mask[s as usize] = true;
        }
        (0..self.num_nodes as NodeId).map(|v| self.root_ap(v, &mask)).sum()
    }

    fn universe(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celf::celf_select;
    use cdim_graph::GraphBuilder;

    fn chain(p: f64) -> (DirectedGraph, EdgeProbabilities) {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let probs = EdgeProbabilities::uniform(&g, p);
        (g, probs)
    }

    #[test]
    fn exact_on_a_path() {
        // A path has a unique influence path per pair, so MIA is exact:
        // σ({0}) = 1 + p + p².
        let (g, probs) = chain(0.5);
        let oracle = MiaOracle::build(&g, &probs, MiaConfig { theta: 0.01 });
        let s = oracle.spread(&[0]);
        assert!((s - 1.75).abs() < 1e-12, "spread = {s}");
    }

    #[test]
    fn theta_truncates_weak_paths() {
        let (g, probs) = chain(0.5);
        // θ = 0.3 kills the two-hop path (0.25) but keeps one-hop (0.5).
        let oracle = MiaOracle::build(&g, &probs, MiaConfig { theta: 0.3 });
        let s = oracle.spread(&[0]);
        assert!((s - 1.5).abs() < 1e-12, "spread = {s}");
    }

    #[test]
    fn seeds_count_themselves() {
        let (g, probs) = chain(0.0);
        let oracle = MiaOracle::build(&g, &probs, MiaConfig::default());
        assert_eq!(oracle.spread(&[0, 2]), 2.0);
        assert_eq!(oracle.spread(&[]), 0.0);
    }

    #[test]
    fn monotone_in_seeds() {
        let g =
            GraphBuilder::new(5).edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)]).build();
        let probs = EdgeProbabilities::uniform(&g, 0.4);
        let oracle = MiaOracle::build(&g, &probs, MiaConfig::default());
        let mut prev = 0.0;
        let mut seeds = Vec::new();
        for u in 0..5u32 {
            seeds.push(u);
            let s = oracle.spread(&seeds);
            assert!(s >= prev - 1e-12, "not monotone at {u}: {s} < {prev}");
            prev = s;
        }
        assert!((prev - 5.0).abs() < 1e-9, "all seeds must cover everything");
    }

    #[test]
    fn underestimates_multipath_graphs() {
        // Diamond 0→{1,2}→3: exact IC gives P(3) = 1 - (1 - 0.25)² but MIA
        // keeps a single path, giving 0.25.
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let probs = EdgeProbabilities::uniform(&g, 0.5);
        let oracle = MiaOracle::build(&g, &probs, MiaConfig { theta: 0.001 });
        let s = oracle.spread(&[0]);
        // 1 (self) + 0.5 + 0.5 + 0.25.
        assert!((s - 2.25).abs() < 1e-12, "spread = {s}");
    }

    #[test]
    fn celf_selects_sensible_seed() {
        // Star with strong hub: the hub must be the first pick.
        let g = GraphBuilder::new(5).edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let probs = EdgeProbabilities::uniform(&g, 0.5);
        let oracle = MiaOracle::build(&g, &probs, MiaConfig::default());
        let sel = celf_select(&oracle, 1);
        assert_eq!(sel.seeds, vec![0]);
        assert!((sel.marginal_gains[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_edges_are_ignored() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let probs = EdgeProbabilities::uniform(&g, 0.0);
        let oracle = MiaOracle::build(&g, &probs, MiaConfig::default());
        assert_eq!(oracle.spread(&[0]), 1.0);
        assert_eq!(oracle.total_size(), 2); // each root alone
    }
}
