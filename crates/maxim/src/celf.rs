//! CELF — Cost-Effective Lazy Forward selection (Leskovec et al., KDD'07).
//!
//! Submodularity guarantees a node's marginal gain can only shrink as the
//! seed set grows, so stale heap entries are *upper bounds*. CELF pops the
//! largest bound; if it was computed against the current seed set it is
//! exact and the node is selected, otherwise the gain is refreshed and the
//! node re-enqueued. For identical oracles CELF returns exactly the greedy
//! selection (up to ties) while skipping most re-evaluations — the paper
//! reports up to 700× fewer (§2.1).

use crate::oracle::{Selection, SpreadOracle};
use cdim_graph::NodeId;
use cdim_util::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: marginal gain, tie-break id, and the seed-set size the gain
/// was computed against.
type Entry = (OrdF64, Reverse<NodeId>, usize);

/// Runs CELF for `k` seeds over the oracle's whole universe.
///
/// ```
/// use cdim_maxim::{celf_select, greedy_select, SpreadOracle};
///
/// // A toy submodular oracle: coverage of item sets.
/// struct Coverage(Vec<Vec<u32>>);
/// impl SpreadOracle for Coverage {
///     fn spread(&self, seeds: &[u32]) -> f64 {
///         let mut items: std::collections::HashSet<u32> = Default::default();
///         for &s in seeds { items.extend(&self.0[s as usize]); }
///         items.len() as f64
///     }
///     fn universe(&self) -> usize { self.0.len() }
/// }
///
/// let oracle = Coverage(vec![vec![0, 1, 2], vec![2, 3], vec![4]]);
/// let lazy = celf_select(&oracle, 2);
/// let plain = greedy_select(&oracle, 2);
/// assert_eq!(lazy.seeds, plain.seeds);          // identical selection
/// assert!(lazy.evaluations <= plain.evaluations); // fewer oracle calls
/// ```
pub fn celf_select<O: SpreadOracle>(oracle: &O, k: usize) -> Selection {
    let candidates: Vec<NodeId> = (0..oracle.universe() as NodeId).collect();
    celf_select_from(oracle, k, &candidates)
}

/// Runs CELF restricted to `candidates`.
///
/// Tie-breaking matches [`crate::greedy::greedy_select_from`]: among equal
/// gains the smaller node id wins.
pub fn celf_select_from<O: SpreadOracle>(oracle: &O, k: usize, candidates: &[NodeId]) -> Selection {
    let mut unique: Vec<NodeId> = candidates.to_vec();
    unique.sort_unstable();
    unique.dedup();

    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut gains: Vec<f64> = Vec::with_capacity(k);
    let mut evaluations = 0usize;
    if k == 0 || unique.is_empty() {
        return Selection { seeds, marginal_gains: gains, evaluations };
    }

    // Initial pass: mg(w) = σ({w}).
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(unique.len());
    for &w in &unique {
        let g = oracle.spread(&[w]);
        evaluations += 1;
        heap.push((OrdF64(g), Reverse(w), 0));
    }

    let mut current_spread = 0.0;
    let mut scratch: Vec<NodeId> = Vec::with_capacity(k + 1);
    while seeds.len() < k {
        let Some((OrdF64(gain), Reverse(w), round)) = heap.pop() else {
            break;
        };
        if round == seeds.len() {
            // Gain is exact w.r.t. the current seed set: select.
            seeds.push(w);
            gains.push(gain);
            current_spread += gain;
        } else {
            // Stale: refresh and re-enqueue.
            scratch.clear();
            scratch.extend_from_slice(&seeds);
            scratch.push(w);
            let s = oracle.spread(&scratch);
            evaluations += 1;
            heap.push((OrdF64(s - current_spread), Reverse(w), seeds.len()));
        }
    }

    Selection { seeds, marginal_gains: gains, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::oracle::{AdditiveOracle, SpreadOracle};

    /// A submodular (coverage) oracle: each node covers a set of items;
    /// σ(S) = |∪ covers|.
    #[derive(Clone)]
    struct CoverageOracle {
        covers: Vec<Vec<u32>>,
    }

    impl SpreadOracle for CoverageOracle {
        fn spread(&self, seeds: &[NodeId]) -> f64 {
            let mut items = std::collections::HashSet::new();
            for &s in seeds {
                items.extend(self.covers[s as usize].iter().copied());
            }
            items.len() as f64
        }

        fn universe(&self) -> usize {
            self.covers.len()
        }
    }

    #[test]
    fn matches_greedy_on_modular_oracle() {
        let o = AdditiveOracle { values: vec![3.0, 1.0, 7.0, 5.0, 2.0] };
        let g = greedy_select(&o, 3);
        let c = celf_select(&o, 3);
        assert_eq!(g.seeds, c.seeds);
        assert_eq!(g.marginal_gains, c.marginal_gains);
    }

    #[test]
    fn matches_greedy_on_coverage_oracle() {
        let o = CoverageOracle {
            covers: vec![vec![0, 1, 2, 3], vec![2, 3, 4], vec![4, 5], vec![0, 5], vec![6]],
        };
        let g = greedy_select(&o, 4);
        let c = celf_select(&o, 4);
        assert_eq!(g.seeds, c.seeds);
        for (a, b) in g.marginal_gains.iter().zip(&c.marginal_gains) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn uses_fewer_evaluations_than_greedy() {
        // 40 nodes, strongly skewed values: CELF should touch few entries
        // after the first pass.
        let values: Vec<f64> = (0..40).map(|i| 1000.0 / (i + 1) as f64).collect();
        let o = AdditiveOracle { values };
        let g = greedy_select(&o, 10);
        let c = celf_select(&o, 10);
        assert_eq!(g.seeds, c.seeds);
        assert!(
            c.evaluations < g.evaluations / 3,
            "celf {} vs greedy {}",
            c.evaluations,
            g.evaluations
        );
    }

    #[test]
    fn first_pass_is_linear() {
        let o = AdditiveOracle { values: vec![1.0; 25] };
        let c = celf_select(&o, 1);
        assert_eq!(c.evaluations, 25);
        assert_eq!(c.seeds, vec![0]);
    }

    #[test]
    fn duplicate_candidates_are_collapsed() {
        let o = AdditiveOracle { values: vec![1.0, 9.0] };
        let c = celf_select_from(&o, 2, &[1, 1, 0, 0]);
        assert_eq!(c.seeds, vec![1, 0]);
    }

    #[test]
    fn k_zero() {
        let o = AdditiveOracle { values: vec![1.0] };
        assert!(celf_select(&o, 0).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::greedy::greedy_select;
    use proptest::prelude::*;

    /// Random coverage instances: CELF must agree with plain greedy
    /// (same seeds, same gains) because coverage is submodular.
    #[derive(Clone, Debug)]
    struct Instance {
        covers: Vec<Vec<u32>>,
    }

    impl crate::oracle::SpreadOracle for Instance {
        fn spread(&self, seeds: &[cdim_graph::NodeId]) -> f64 {
            let mut items = std::collections::HashSet::new();
            for &s in seeds {
                items.extend(self.covers[s as usize].iter().copied());
            }
            items.len() as f64
        }

        fn universe(&self) -> usize {
            self.covers.len()
        }
    }

    proptest! {
        #[test]
        fn celf_equals_greedy(
            covers in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 0..6), 1..10),
            k in 1usize..5,
        ) {
            let inst = Instance { covers };
            let g = greedy_select(&inst, k);
            let c = celf_select(&inst, k);
            prop_assert_eq!(&g.seeds, &c.seeds);
            for (a, b) in g.marginal_gains.iter().zip(&c.marginal_gains) {
                prop_assert!((a - b).abs() < 1e-12);
            }
            prop_assert!(c.evaluations <= g.evaluations);
        }
    }
}
