//! Structural baseline selectors (Fig 6): HighDegree, PageRank, Random.
//!
//! These ignore the action log entirely — they are the "graph structure
//! only" straw men the paper compares all models against.

use cdim_graph::pagerank::{pagerank, PageRankConfig};
use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::{topk::top_k_indices, Rng};

/// Top-`k` nodes by out-degree (ties toward smaller id).
pub fn high_degree_seeds(graph: &DirectedGraph, k: usize) -> Vec<NodeId> {
    let scores: Vec<f64> = graph.nodes().map(|u| graph.out_degree(u) as f64).collect();
    top_k_indices(&scores, k).into_iter().map(|i| i as NodeId).collect()
}

/// Top-`k` nodes by PageRank score.
pub fn pagerank_seeds(graph: &DirectedGraph, k: usize) -> Vec<NodeId> {
    let (scores, _) = pagerank(graph, PageRankConfig::default());
    top_k_indices(&scores, k).into_iter().map(|i| i as NodeId).collect()
}

/// `k` distinct uniformly random nodes.
pub fn random_seeds(graph: &DirectedGraph, k: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = Rng::seed_from_u64(seed);
    rng.sample_indices(graph.num_nodes(), k).into_iter().map(|i| i as NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;

    fn star_plus_chain() -> DirectedGraph {
        // 0 has out-degree 3; chain 4 -> 5 -> 6.
        GraphBuilder::new(7).edges([(0, 1), (0, 2), (0, 3), (4, 5), (5, 6)]).build()
    }

    #[test]
    fn high_degree_prefers_hubs() {
        let g = star_plus_chain();
        let seeds = high_degree_seeds(&g, 2);
        assert_eq!(seeds[0], 0);
        // 4 and 5 both have out-degree 1; smaller id wins second place.
        assert_eq!(seeds[1], 4);
    }

    #[test]
    fn pagerank_prefers_sinks_of_mass() {
        // All point at node 2.
        let g = GraphBuilder::new(4).edges([(0, 2), (1, 2), (3, 2)]).build();
        let seeds = pagerank_seeds(&g, 1);
        assert_eq!(seeds, vec![2]);
    }

    #[test]
    fn random_seeds_are_distinct_and_deterministic() {
        let g = star_plus_chain();
        let a = random_seeds(&g, 5, 3);
        let b = random_seeds(&g, 5, 3);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn k_exceeding_n_is_clamped() {
        let g = star_plus_chain();
        assert_eq!(high_degree_seeds(&g, 100).len(), 7);
        assert_eq!(random_seeds(&g, 100, 1).len(), 7);
    }
}
