//! `cdim` — command-line interface to the credit-distribution model.
//!
//! ```text
//! cdim generate --preset flixster_small --out DIR     synthesize a dataset
//! cdim stats    --graph G.tsv --log L.tsv             Table-1-style statistics
//! cdim select   --graph G.tsv --log L.tsv --k 50      influence maximization
//! cdim predict  --graph G.tsv --log L.tsv --seeds 1,2 spread prediction
//! cdim train    --graph G.tsv --log L.tsv --out M.snap   full training
//! cdim train    … --window N …                           train on the last N actions only
//! cdim train    … --append D.tsv --base M.snap --policy P …   delta retrain
//! cdim snapshot --graph G.tsv --log L.tsv --out M.snap   alias of full train
//! cdim serve    --snapshot M.snap --addr 127.0.0.1:7171  query service
//! cdim follow   --graph G.tsv --log L.tsv --snapshot M.ckpt --serve ADDR   online retraining
//! cdim query    --addr 127.0.0.1:7171 --op topk --k 10   remote queries
//! cdim stats    --addr 127.0.0.1:7171                    server counters
//! ```
//!
//! Graphs and logs are the TSV formats of `cdim::actionlog::storage`;
//! snapshots are the binary format of `cdim::serve::snapshot`; follow
//! checkpoints are the container of `cdim::ingest::checkpoint`.

use cdim::actionlog::{stats::log_stats, storage, ActionLogDelta};
use cdim::graph::stats::graph_stats;
use cdim::ingest::{BatchConfig, FollowConfig, IngestDriver, WindowPolicy};
use cdim::metrics::Table;
use cdim::obs::{MetricsRegistry, MetricsServer, SpanDump, Tracer};
use cdim::prelude::*;
use cdim::serve::{
    server, ClientError, InfluenceService, ModelSnapshot, QueryClient, SnapshotFormat,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    // `cdim trace` has boolean switches; expand them to the `--key value`
    // shape the parser demands before it sees them.
    let tail = if command == "trace" {
        expand_switches(&args[1..], &["slow"])
    } else {
        args[1..].to_vec()
    };
    let flags = match Flags::parse(&tail) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "select" => cmd_select(&flags),
        "predict" => cmd_predict(&flags),
        "train" => cmd_train(&flags),
        "snapshot" => cmd_snapshot(&flags),
        "serve" => cmd_serve(&flags),
        "follow" => cmd_follow(&flags),
        "query" => cmd_query(&flags),
        "trace" => cmd_trace(&flags),
        "--help" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  \
         cdim generate --preset <name>|tiny --out <dir> [--scale N]\n  \
         cdim stats    --graph <g.tsv> --log <l.tsv>\n  \
         cdim select   --graph <g.tsv> --log <l.tsv> [--k N] [--lambda F] [--policy uniform|time-aware] [--threads N]\n  \
         cdim predict  --graph <g.tsv> --log <l.tsv> --seeds a,b,c [--policy ...] [--mc ic|lt] [--sims N] [--threads N]\n  \
         cdim train    --graph <g.tsv> --log <l.tsv> --out <m.snap> [--policy ...] [--lambda F] [--threads N] [--window N]\n  \
         cdim train    --graph <g.tsv> --append <d.tsv> --base <m.snap> --out <m2.snap> --policy uniform|time-aware [--log <l.tsv>] [--threads N]\n  \
         cdim snapshot --graph <g.tsv> --log <l.tsv> --out <m.snap> [--policy ...] [--lambda F] [--threads N] [--format v1|v2]\n  \
         cdim serve    --snapshot <m.snap> [--addr host:port] [--cache N] [--max-connections N] [--metrics-addr host:port]\n  \
                       [--trace-sample N] [--trace-slow-ms T]\n  \
         cdim follow   --graph <g.tsv> --log <live.tsv> --snapshot <m.ckpt> [--serve host:port]\n  \
                       [--batch-actions N] [--batch-ms T] [--checkpoint-every K] [--poll-ms T]\n  \
                       [--idle-exit-ms T] [--export-snapshot <m.snap>] [--policy uniform|time-aware]\n  \
                       [--policy-log <l.tsv>] [--lambda F] [--threads N] [--cache N]\n  \
                       [--window-actions N | --window-age A] [--metrics-addr host:port]\n  \
                       [--trace-sample N] [--trace-slow-ms T]\n  \
         cdim query    --addr <host:port> --op topk|spread|gain|info [--k N] [--seeds a,b] [--candidate x]\n  \
         cdim stats    --addr <host:port>\n  \
         cdim trace    --addr <host:port> [--slow] [--chrome <out.json>]"
    );
}

/// Minimal `--key value` flag parser.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
            let value = args.get(i + 1).ok_or_else(|| format!("--{key} requires a value"))?;
            flags.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Flags(flags))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid --{key}: {raw:?}")),
        }
    }
}

fn load(flags: &Flags) -> Result<(DirectedGraph, ActionLog), String> {
    let graph_path = flags.require("graph")?;
    let log_path = flags.require("log")?;
    let graph = storage::load_graph(Path::new(graph_path))
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let log = storage::load_action_log(Path::new(log_path), graph.num_nodes())
        .map_err(|e| format!("reading {log_path}: {e}"))?;
    Ok((graph, log))
}

fn policy_config(flags: &Flags) -> Result<CdModelConfig, String> {
    let policy = match flags.get("policy").unwrap_or("time-aware") {
        "uniform" => PolicyKind::Uniform,
        "time-aware" => PolicyKind::TimeAware,
        other => return Err(format!("unknown policy {other:?} (uniform|time-aware)")),
    };
    let lambda = flags.get_parsed("lambda", 0.001)?;
    if !(0.0..=1.0).contains(&lambda) {
        return Err(format!("--lambda must be in [0, 1], got {lambda}"));
    }
    // One thread budget for every parallel stage of the invocation
    // (credit scan and, in `predict`, the MC cross-check): 0 = auto.
    let parallelism = Parallelism::fixed(flags.get_parsed("threads", 0usize)?);
    Ok(CdModelConfig { policy, lambda, parallelism })
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let preset = flags.require("preset")?;
    let out: PathBuf = flags.require("out")?.into();
    let scale = flags.get_parsed("scale", 1usize)?;
    let spec = match preset {
        "tiny" => cdim::datagen::presets::tiny(),
        "flixster_small" => cdim::datagen::presets::flixster_small(),
        "flickr_small" => cdim::datagen::presets::flickr_small(),
        "flixster_large" => cdim::datagen::presets::flixster_large(),
        "flickr_large" => cdim::datagen::presets::flickr_large(),
        other => return Err(format!("unknown preset {other:?}")),
    };
    let ds = spec.scaled_down(scale.max(1)).generate();
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {out:?}: {e}"))?;
    let graph_path = out.join("graph.tsv");
    let log_path = out.join("log.tsv");
    storage::save_graph(&ds.graph, &graph_path).map_err(|e| e.to_string())?;
    storage::save_action_log(&ds.log, &log_path).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges) and {} ({} traces, {} tuples)",
        graph_path.display(),
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        log_path.display(),
        ds.log.num_actions(),
        ds.log.num_tuples()
    );
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    // With --addr, report a running server's observability counters;
    // otherwise the classic Table-1-style dataset statistics.
    if let Some(addr) = flags.get("addr") {
        let mut client =
            QueryClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
        let stats = client.stats().map_err(|e| e.to_string())?;
        let mut table = Table::new(["counter", "value"]);
        table.row(["queries served".to_string(), stats.queries.to_string()]);
        table.row(["cache hits".to_string(), stats.cache_hits.to_string()]);
        table.row(["cache misses".to_string(), stats.cache_misses.to_string()]);
        table.row(["publishes applied".to_string(), stats.publishes.to_string()]);
        table.row(["model version".to_string(), stats.model_version.to_string()]);
        print!("{table}");
        // Op 6: the full registry dump — latency quantiles, ingest
        // throughput/lag, quarantine reasons. An older server that lacks
        // the opcode just loses this section, not the counters above.
        match client.metrics() {
            Ok(dump) => print_metrics_dump(&dump),
            Err(e) => eprintln!("(metrics op unavailable: {e})"),
        }
        // Op 7 probe: when the server carries the span flight recorder,
        // point at the per-request view. A pre-op-7 server answers with
        // an error on a still-usable connection — stay silent then.
        if let Ok(dump) = client.trace_dump() {
            println!(
                "tracing: {} spans in the flight recorder, {} slow traces \
                 (`cdim trace --addr {addr}` for per-request waterfalls)",
                dump.spans.len(),
                dump.slow.len()
            );
        }
        return Ok(());
    }
    let (graph, log) = load(flags)?;
    let gs = graph_stats(&graph);
    let ls = log_stats(&log);
    let mut table = Table::new(["statistic", "value"]);
    table.row(["nodes".to_string(), gs.nodes.to_string()]);
    table.row(["directed edges".to_string(), gs.edges.to_string()]);
    table.row(["avg degree".to_string(), format!("{:.2}", gs.avg_degree)]);
    table.row(["reciprocity".to_string(), format!("{:.2}", gs.reciprocity)]);
    table.row(["propagations".to_string(), ls.propagations.to_string()]);
    table.row(["tuples".to_string(), ls.tuples.to_string()]);
    table.row(["avg trace size".to_string(), format!("{:.1}", ls.avg_size)]);
    table.row(["max trace size".to_string(), ls.max_size.to_string()]);
    table.row(["active users".to_string(), ls.active_users.to_string()]);
    print!("{table}");
    Ok(())
}

/// Renders a wire-op-6 registry dump: one table of scalar series
/// (counters, gauges, infos), one of histogram quantiles.
fn print_metrics_dump(dump: &cdim::obs::RegistryDump) {
    if dump.is_empty() {
        return;
    }
    let mut scalars = Table::new(["metric", "value"]);
    for (name, v) in &dump.counters {
        scalars.row([name.clone(), v.to_string()]);
    }
    for (name, v) in &dump.gauges {
        scalars.row([name.clone(), format!("{v:.3}")]);
    }
    for (name, key, value) in &dump.infos {
        if !value.is_empty() {
            scalars.row([format!("{name}{{{key}}}"), value.clone()]);
        }
    }
    print!("{scalars}");
    let recorded: Vec<_> = dump.histograms.iter().filter(|(_, s)| s.count > 0).collect();
    if !recorded.is_empty() {
        let mut hist = Table::new(["histogram", "count", "p50", "p90", "p99", "max"]);
        for (name, s) in recorded {
            // `*_seconds` histograms are latencies; the rest (e.g. batch
            // sizes) are plain numbers.
            let fmt: fn(f64) -> String =
                if name.ends_with("_seconds") { fmt_secs } else { |v| format!("{v:.1}") };
            hist.row([
                name.clone(),
                s.count.to_string(),
                fmt(s.p50),
                fmt(s.p90),
                fmt(s.p99),
                fmt(s.max),
            ]);
        }
        print!("{hist}");
    }
}

/// Human-scaled seconds for latency tables.
fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

fn cmd_select(flags: &Flags) -> Result<(), String> {
    let (graph, log) = load(flags)?;
    let k = flags.get_parsed("k", 50usize)?;
    let config = policy_config(flags)?;
    let timer = cdim::util::Timer::start();
    let model = CdModel::try_train(&graph, &log, config).map_err(|e| e.to_string())?;
    let selection = model.select(k);
    eprintln!(
        "trained + selected {} seeds in {:.2}s ({} credit entries, ~{})",
        selection.seeds.len(),
        timer.secs(),
        model.store().total_entries(),
        cdim::util::mem::fmt_bytes(model.store_memory_bytes()),
    );
    let mut table = Table::new(["rank", "user", "marginal gain"]);
    for (i, (seed, gain)) in selection.seeds.iter().zip(&selection.marginal_gains).enumerate() {
        table.row([(i + 1).to_string(), seed.to_string(), format!("{gain:.3}")]);
    }
    print!("{table}");
    Ok(())
}

fn parse_seeds(raw: &str) -> Result<Vec<u32>, String> {
    raw.split(',')
        .map(|s| s.trim().parse::<u32>().map_err(|_| format!("invalid seed id {s:?}")))
        .collect()
}

fn cmd_predict(flags: &Flags) -> Result<(), String> {
    let (graph, log) = load(flags)?;
    let config = policy_config(flags)?;
    let seeds = parse_seeds(flags.require("seeds")?)?;
    for &s in &seeds {
        if (s as usize) >= graph.num_nodes() {
            return Err(format!("seed {s} out of range ({} nodes)", graph.num_nodes()));
        }
    }
    let model = CdModel::try_train(&graph, &log, config).map_err(|e| e.to_string())?;
    println!("sigma_cd({seeds:?}) = {:.2}", model.spread(&seeds));

    // Optional Monte-Carlo cross-check under weighted-cascade
    // probabilities, sharded over --threads workers.
    if let Some(mc) = flags.get("mc") {
        let sims = flags.get_parsed("sims", 1000usize)?;
        let threads = flags.get_parsed("threads", 0usize)?;
        let mc_config = McConfig { simulations: sims, threads, base_seed: 0xC0FFEE };
        let probs = cdim::learning::assign::weighted_cascade(&graph);
        let estimate = match mc {
            "ic" => {
                MonteCarloEstimator::new(IcModel::new(&graph, &probs), mc_config).spread(&seeds)
            }
            "lt" => {
                MonteCarloEstimator::new(LtModel::new(&graph, &probs), mc_config).spread(&seeds)
            }
            other => return Err(format!("unknown MC model {other:?} (ic|lt)")),
        };
        println!(
            "sigma_{mc}/wc({seeds:?}) = {estimate:.2}  ({sims} simulations, {} threads)",
            if threads == 0 { "auto".to_string() } else { threads.to_string() }
        );
    }
    Ok(())
}

/// `cdim train`: full training into a snapshot, or — with `--append` —
/// incremental retraining that folds a TSV of new actions into an
/// existing snapshot without rescanning the old log.
///
/// `--window N` trains on only the last N actions of the log. The
/// time-aware policy parameters are still learned from the *full* log
/// (the fixed-policy contract `cdim follow` honors across expiries), so
/// the result is byte-identical to what a windowed follow session serves
/// once its window policy has expired everything older.
///
/// Snapshots persist credits, not the policy they were trained under, so
/// append mode demands an explicit `--policy` matching the base's — a
/// silently defaulted mismatch would corrupt the model without any
/// diagnostic. `--log` is the *original* training log: it is read only
/// to rebuild the time-aware policy parameters (`--policy uniform` skips
/// loading it entirely), never rescanned. The result is byte-identical
/// to full training on the combined log under the same policy.
fn cmd_train(flags: &Flags) -> Result<(), String> {
    let config = policy_config(flags)?;
    let out: PathBuf = flags.require("out")?.into();
    let timer = cdim::util::Timer::start();

    let Some(delta_path) = flags.get("append") else {
        let (graph, log) = load(flags)?;
        let snapshot = match flags.get("window") {
            None => {
                // Full training — same path as `cdim snapshot`.
                ModelSnapshot::build(&graph, &log, config).map_err(|e| e.to_string())?
            }
            Some(_) => {
                let keep = flags.get_parsed("window", 0usize)?;
                if keep == 0 {
                    return Err("--window must be at least 1 action".to_string());
                }
                // Policy from the full log, scan over the window only.
                let policy = config.build_policy(&graph, &log);
                let windowed = log.split_off_prefix(log.num_actions().saturating_sub(keep)).1;
                let store = cdim::core::scan_with(
                    &graph,
                    &windowed,
                    &policy,
                    config.lambda,
                    config.parallelism,
                )
                .map_err(|e| e.to_string())?;
                ModelSnapshot::from_store(store)
            }
        };
        snapshot.save(&out).map_err(|e| e.to_string())?;
        println!(
            "trained {} ({} actions, {} credit entries) in {:.2}s",
            out.display(),
            snapshot.num_actions(),
            snapshot.total_entries(),
            timer.secs()
        );
        return Ok(());
    };

    if flags.get("window").is_some() {
        return Err("--window cannot be combined with --append: retract from a windowed follow \
             checkpoint instead, or retrain on the window"
            .to_string());
    }

    if flags.get("policy").is_none() {
        return Err("--append requires an explicit --policy: snapshots do not record the policy \
             they were trained with, and extending uniform credits with time-aware ones \
             (or vice versa) silently corrupts the model"
            .to_string());
    }
    let graph_path = flags.require("graph")?;
    let graph = storage::load_graph(Path::new(graph_path))
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let base_path: PathBuf = flags.require("base")?.into();
    let base = ModelSnapshot::load(&base_path)
        .map_err(|e| format!("loading base snapshot {}: {e}", base_path.display()))?;
    if base.num_users() != graph.num_nodes() {
        return Err(format!(
            "base snapshot has {} users but the graph has {} nodes",
            base.num_users(),
            graph.num_nodes()
        ));
    }
    // `base.lambda()` works for both mutable (v1) and compact (v2) bases.
    let base_lambda = base.lambda();
    if flags.get("lambda").is_some() && config.lambda != base_lambda {
        return Err(format!(
            "--lambda {} conflicts with the base snapshot's lambda {base_lambda} \
             (the truncation threshold is fixed at training time)",
            config.lambda
        ));
    }
    let delta_log = storage::load_action_log(Path::new(delta_path), graph.num_nodes())
        .map_err(|e| format!("reading {delta_path}: {e}"))?;
    let delta = ActionLogDelta::new(base.num_actions(), delta_log);
    // The uniform policy is log-free; only time-aware needs the original
    // training log — a 2% refresh must not pay a 100% log parse.
    let policy = match config.policy {
        PolicyKind::Uniform => CreditPolicy::Uniform,
        PolicyKind::TimeAware => {
            let log_path = flags.require("log")?;
            let log = storage::load_action_log(Path::new(log_path), graph.num_nodes())
                .map_err(|e| format!("reading {log_path}: {e}"))?;
            config.build_policy(&graph, &log)
        }
    };
    let apply = cdim::util::Timer::start();
    let snapshot =
        base.extend(&graph, &delta, &policy, config.parallelism).map_err(|e| e.to_string())?;
    let apply_secs = apply.secs();
    snapshot.save(&out).map_err(|e| e.to_string())?;
    println!(
        "appended {} actions ({} tuples) in {:.3}s -> {} ({} actions, {} credit entries, \
         {:.2}s total)",
        delta.num_new_actions(),
        delta.num_new_tuples(),
        apply_secs,
        out.display(),
        snapshot.num_actions(),
        snapshot.total_entries(),
        timer.secs()
    );
    Ok(())
}

fn cmd_snapshot(flags: &Flags) -> Result<(), String> {
    let (graph, log) = load(flags)?;
    let config = policy_config(flags)?;
    let out: PathBuf = flags.require("out")?.into();
    let format = snapshot_format(flags)?;
    let timer = cdim::util::Timer::start();
    let snapshot = ModelSnapshot::build(&graph, &log, config).map_err(|e| e.to_string())?;
    let entries = snapshot.total_entries();
    snapshot.save_as(&out, format).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map_err(|e| e.to_string())?.len();
    println!(
        "wrote {} ({}, {}, {entries} credit entries, {} users, {} actions) in {:.2}s",
        out.display(),
        match format {
            SnapshotFormat::V1 => "v1",
            SnapshotFormat::V2 => "v2",
        },
        cdim::util::mem::fmt_bytes(bytes as usize),
        snapshot.num_users(),
        snapshot.num_actions(),
        timer.secs()
    );
    Ok(())
}

/// Parses `--format v1|v2` (default v1, the canonical dump format).
fn snapshot_format(flags: &Flags) -> Result<SnapshotFormat, String> {
    match flags.get("format").unwrap_or("v1") {
        "v1" => Ok(SnapshotFormat::V1),
        "v2" => Ok(SnapshotFormat::V2),
        other => Err(format!("unknown snapshot format {other:?} (expected v1 or v2)")),
    }
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let path: PathBuf = flags.require("snapshot")?.into();
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7171");
    let cache = flags.get_parsed("cache", 1024usize)?;
    let load_timer = cdim::util::Timer::start();
    let snapshot = ModelSnapshot::load(&path).map_err(|e| e.to_string())?;
    let load_secs = load_timer.secs();
    let registry = MetricsRegistry::global();
    registry.gauge("cdim_serve_snapshot_load_seconds").set(load_secs);
    registry.gauge("cdim_serve_model_resident_bytes").set(snapshot.resident_bytes() as f64);
    eprintln!(
        "loaded {} ({}, {} users, {} actions, {} committed seeds, {} resident) in {:.3}s",
        path.display(),
        if snapshot.is_compact() { "v2 zero-copy" } else { "v1" },
        snapshot.num_users(),
        snapshot.num_actions(),
        snapshot.committed_seeds(),
        cdim::util::mem::fmt_bytes(snapshot.resident_bytes()),
        load_secs
    );
    configure_tracer(flags)?;
    // The global registry, so a scrape sees serve + scan series together.
    let service =
        Arc::new(InfluenceService::with_registry(snapshot, cache, MetricsRegistry::global()));
    // Named binding: the scrape endpoint lives as long as the server.
    let _metrics_handle = spawn_metrics(flags)?;
    let mut config = server::ServerConfig::default();
    config.max_connections = flags.get_parsed("max-connections", config.max_connections)?;
    let handle =
        server::spawn_with(service, addr, config).map_err(|e| format!("binding {addr}: {e}"))?;
    // The exact address on its own stdout line, so scripts (and the CLI
    // test) can discover an ephemeral port.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    loop {
        std::thread::park();
    }
}

/// Applies `--trace-sample` / `--trace-slow-ms` to the process-global
/// span flight recorder (serve and follow share the same knobs): sample
/// every Nth request trace (`1` traces everything, `0` disables; the
/// recorder's own default is 1 in 8), and capture whole traces slower
/// than T ms into the slow-query log (default 10 ms). Absent flags leave
/// the recorder's defaults untouched.
fn configure_tracer(flags: &Flags) -> Result<(), String> {
    let tracer = Tracer::global();
    if flags.get("trace-sample").is_some() {
        tracer.set_sampling(flags.get_parsed("trace-sample", 1u32)?);
    }
    if flags.get("trace-slow-ms").is_some() {
        tracer.set_slow_threshold(Duration::from_millis(flags.get_parsed("trace-slow-ms", 10u64)?));
    }
    Ok(())
}

/// Binds the Prometheus-text scrape endpoint when `--metrics-addr` is
/// given, announcing the bound address on stdout (script-friendly, same
/// convention as `listening on`).
fn spawn_metrics(flags: &Flags) -> Result<Option<MetricsServer>, String> {
    let Some(addr) = flags.get("metrics-addr") else { return Ok(None) };
    let handle = MetricsServer::spawn(MetricsRegistry::global(), addr)
        .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
    println!("metrics on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    Ok(Some(handle))
}

/// `cdim follow`: tail a live action log, fold new actions into the
/// model as micro-batched deltas, and (optionally) serve queries from
/// the continuously refreshed snapshot — the full online pipeline.
///
/// The `--snapshot` file is a *checkpoint* (model + log position +
/// watermark): if it exists the follower resumes from it without
/// rescanning anything; `--export-snapshot` additionally writes a plain
/// `cdim serve`-loadable snapshot on clean exit. Like `cdim train
/// --append`, the policy must match across restarts — and time-aware
/// parameters must come from a *frozen* log (`--policy-log`), never the
/// moving stream.
///
/// `--window-actions N` (keep the newest N actions) or `--window-age A`
/// (keep external ids within A of the watermark) turn the session into a
/// sliding-window model: expired actions are retracted at every
/// checkpoint, and the served state stays byte-identical to `cdim train`
/// on just the surviving window.
fn cmd_follow(flags: &Flags) -> Result<(), String> {
    let graph_path = flags.require("graph")?;
    let graph = storage::load_graph(Path::new(graph_path))
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let log_path: PathBuf = flags.require("log")?.into();
    let ckpt_path: PathBuf = flags.require("snapshot")?.into();

    let policy = match flags.get("policy").unwrap_or("uniform") {
        "uniform" => CreditPolicy::Uniform,
        "time-aware" => {
            let policy_log = flags.get("policy-log").ok_or_else(|| {
                "--policy time-aware requires --policy-log <l.tsv>: the time-aware parameters \
                 (tau, infl) must be derived from a frozen log, not the moving stream"
                    .to_string()
            })?;
            let frozen = storage::load_action_log(Path::new(policy_log), graph.num_nodes())
                .map_err(|e| format!("reading {policy_log}: {e}"))?;
            CreditPolicy::time_aware(&graph, &frozen)
        }
        other => return Err(format!("unknown policy {other:?} (uniform|time-aware)")),
    };
    let lambda = match flags.get("lambda") {
        None => None,
        Some(_) => {
            let lambda = flags.get_parsed("lambda", 0.001)?;
            if !(0.0..=1.0).contains(&lambda) {
                return Err(format!("--lambda must be in [0, 1], got {lambda}"));
            }
            Some(lambda)
        }
    };
    let window = match (flags.get("window-actions"), flags.get("window-age")) {
        (Some(_), Some(_)) => {
            return Err("--window-actions and --window-age are mutually exclusive (one policy per \
                 follow session)"
                .to_string())
        }
        (Some(_), None) => WindowPolicy::Actions(flags.get_parsed("window-actions", 0usize)?),
        (None, Some(_)) => WindowPolicy::WatermarkAge(flags.get_parsed("window-age", 0u32)?),
        (None, None) => WindowPolicy::Unbounded,
    };
    let config = FollowConfig {
        batch: BatchConfig {
            max_actions: flags.get_parsed("batch-actions", 1usize)?.max(1),
            max_age: Duration::from_millis(flags.get_parsed("batch-ms", 500u64)?),
        },
        window,
        poll_interval: Duration::from_millis(flags.get_parsed("poll-ms", 200u64)?.max(1)),
        checkpoint_every: flags.get_parsed("checkpoint-every", 1u64)?,
        parallelism: Parallelism::fixed(flags.get_parsed("threads", 0usize)?),
        lambda,
        cache_capacity: flags.get_parsed("cache", 1024usize)?,
        idle_exit: match flags.get_parsed("idle-exit-ms", 0u64)? {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
    };

    configure_tracer(flags)?;
    let resuming = ckpt_path.exists();
    // The global registry, so a scrape sees ingest + serve + scan series
    // in one dump.
    let mut driver = IngestDriver::open_with_registry(
        graph,
        policy,
        &log_path,
        &ckpt_path,
        config,
        MetricsRegistry::global(),
    )
    .map_err(|e| e.to_string())?;
    let _metrics_handle = spawn_metrics(flags)?;
    eprintln!(
        "{} {} from byte {} ({} actions in model)",
        if resuming { "resuming" } else { "following" },
        log_path.display(),
        driver.position().0,
        driver.snapshot().num_actions()
    );

    // Serving is optional: the driver publishes into the shared service
    // either way, so attaching the TCP frontend is a one-liner.
    let server_handle = match flags.get("serve") {
        Some(addr) => {
            let handle = server::spawn(Arc::clone(driver.service()), addr)
                .map_err(|e| format!("binding {addr}: {e}"))?;
            // The exact address on its own stdout line (script-friendly,
            // same convention as `cdim serve`).
            println!("listening on {}", handle.addr());
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            Some(handle)
        }
        None => None,
    };

    driver
        .run(|report| {
            eprintln!("{report}");
            for dead in &report.dead_letters {
                eprintln!("warning: {dead}");
            }
        })
        .map_err(|e| e.to_string())?;

    // Clean (idle-exit) shutdown: optionally export a plain snapshot.
    if let Some(out) = flags.get("export-snapshot") {
        let snapshot = driver.snapshot();
        snapshot.save(Path::new(out)).map_err(|e| e.to_string())?;
        println!(
            "exported {out} ({} actions, {} credit entries)",
            snapshot.num_actions(),
            snapshot.total_entries()
        );
    }
    drop(server_handle);
    Ok(())
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("addr")?;
    let op = flags.require("op")?;
    let mut client =
        QueryClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match op {
        "topk" => {
            let k = flags.get_parsed("k", 10usize)?;
            let (seeds, gains) = client.top_k(k as u32).map_err(|e| e.to_string())?;
            let mut table = Table::new(["rank", "user", "marginal gain"]);
            for (i, (seed, gain)) in seeds.iter().zip(&gains).enumerate() {
                table.row([(i + 1).to_string(), seed.to_string(), format!("{gain:.3}")]);
            }
            print!("{table}");
        }
        "spread" => {
            let seeds = parse_seeds(flags.require("seeds")?)?;
            let sigma = client.spread(&seeds).map_err(|e| e.to_string())?;
            println!("sigma_cd({seeds:?}) = {sigma:.4}");
        }
        "gain" => {
            let seeds = parse_seeds(flags.require("seeds")?)?;
            let candidate: u32 = flags
                .require("candidate")?
                .parse()
                .map_err(|_| "invalid --candidate: expected a user id".to_string())?;
            let gain = client.marginal_gain(&seeds, candidate).map_err(|e| e.to_string())?;
            println!("mg({candidate} | {seeds:?}) = {gain:.4}");
        }
        "info" => {
            let info = client.info().map_err(|e| e.to_string())?;
            let mut table = Table::new(["field", "value"]);
            table.row(["users".to_string(), info.num_users.to_string()]);
            table.row(["actions".to_string(), info.num_actions.to_string()]);
            table.row(["committed seeds".to_string(), info.committed_seeds.to_string()]);
            table.row(["cache hits".to_string(), info.cache_hits.to_string()]);
            table.row(["cache misses".to_string(), info.cache_misses.to_string()]);
            print!("{table}");
        }
        other => return Err(format!("unknown query op {other:?} (topk|spread|gain|info)")),
    }
    Ok(())
}

/// `cdim trace`: pull the server's span flight recorder (wire op 7) and
/// render per-request waterfalls — one block per trace, children indented
/// under their parent, each line showing the span's offset from the trace
/// root and its duration.
///
/// `--slow` switches to the slow-query log (worst complete traces over
/// the server's `--trace-slow-ms` threshold, worst first). `--chrome
/// out.json` additionally writes the same spans as Chrome trace-event
/// JSON for `chrome://tracing` / Perfetto.
///
/// A server predating op 7 answers with a protocol error on a healthy
/// connection; that degrades to a notice on stderr, not a failure.
fn cmd_trace(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("addr")?;
    let slow = flags.get("slow").is_some_and(|v| v == "true" || v == "1");
    let mut client =
        QueryClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let dump = match client.trace_dump() {
        Ok(dump) => dump,
        Err(ClientError::Server(message)) => {
            eprintln!("(trace op unavailable: {message})");
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    // --slow selects which span set both the waterfall and the Chrome
    // export see: the flight recorder, or the slow-log traces flattened.
    let spans: Vec<SpanDump> = if slow {
        dump.slow.iter().flat_map(|t| t.spans.iter().cloned()).collect()
    } else {
        dump.spans.clone()
    };
    if let Some(out) = flags.get("chrome") {
        std::fs::write(out, chrome_trace_json(&spans))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out} ({} spans)", spans.len());
    }
    if slow {
        if dump.slow.is_empty() {
            println!("slow-query log is empty (threshold not exceeded yet)");
            return Ok(());
        }
        for (i, trace) in dump.slow.iter().enumerate() {
            println!("slow #{} ({})", i + 1, fmt_secs(trace.duration_ns as f64 / 1e9));
            print_waterfall(&trace.spans);
        }
        return Ok(());
    }
    if spans.is_empty() {
        println!("flight recorder is empty (no sampled requests yet)");
        return Ok(());
    }
    print_waterfall(&spans);
    Ok(())
}

/// Renders one waterfall block per trace: root spans at the margin,
/// children indented, offsets relative to the earliest span of the trace.
fn print_waterfall(spans: &[SpanDump]) {
    // Group by trace, preserving the dump's start-time order.
    let mut traces: Vec<(u64, Vec<&SpanDump>)> = Vec::new();
    for span in spans {
        match traces.iter_mut().find(|(id, _)| *id == span.trace_id) {
            Some((_, list)) => list.push(span),
            None => traces.push((span.trace_id, vec![span])),
        }
    }
    for (trace_id, list) in &traces {
        println!("trace {trace_id:012x}");
        let base = list.iter().map(|s| s.start_ns).min().unwrap_or(0);
        // A span whose parent was overwritten in the ring renders as a
        // top-level line rather than vanishing.
        let present: Vec<u32> = list.iter().map(|s| s.span_id).collect();
        let mut top: Vec<&&SpanDump> =
            list.iter().filter(|s| s.parent_id == 0 || !present.contains(&s.parent_id)).collect();
        top.sort_by_key(|s| s.start_ns);
        for span in top {
            print_span_tree(list, span, 0, base);
        }
    }
}

/// One waterfall line (`stage  +offset  duration  kv…`) and, recursively,
/// the span's children sorted by start time.
fn print_span_tree(list: &[&SpanDump], span: &SpanDump, depth: usize, base: u64) {
    let offset = span.start_ns.saturating_sub(base) as f64 / 1e9;
    let mut line = format!(
        "  {:indent$}{:<width$} +{:>9}  {:>9}",
        "",
        span.stage,
        fmt_secs(offset),
        fmt_secs(span.duration_ns() as f64 / 1e9),
        indent = depth * 2,
        width = 24usize.saturating_sub(depth * 2),
    );
    for (key, value) in &span.kv {
        line.push_str(&format!("  {key}={value}"));
    }
    println!("{line}");
    let mut children: Vec<&&SpanDump> =
        list.iter().filter(|s| s.parent_id == span.span_id && s.span_id != span.span_id).collect();
    children.sort_by_key(|s| s.start_ns);
    for child in children {
        print_span_tree(list, child, depth + 1, base);
    }
}

/// Spans as Chrome trace-event JSON (the `chrome://tracing` / Perfetto
/// format): complete (`"ph":"X"`) events, microsecond timestamps, one
/// synthetic tid per trace so concurrent requests land on separate rows.
fn chrome_trace_json(spans: &[SpanDump]) -> String {
    let mut tids: Vec<u64> = Vec::new();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        let tid = match tids.iter().position(|&t| t == span.trace_id) {
            Some(at) => at + 1,
            None => {
                tids.push(span.trace_id);
                tids.len()
            }
        };
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"cdim\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{tid},\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}",
            json_string(&span.stage),
            span.start_ns as f64 / 1e3,
            span.duration_ns() as f64 / 1e3,
            span.trace_id,
            span.span_id,
            span.parent_id,
        ));
        for (key, value) in &span.kv {
            out.push_str(&format!(",{}:{value}", json_string(key)));
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

/// Minimal JSON string encoder for stage and kv-key names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Expands bare boolean switches (`--slow`) into the `--key value` shape
/// [`Flags::parse`] demands, so `cdim trace --addr A --slow` works without
/// loosening the strict pair parser every other command relies on.
fn expand_switches(args: &[String], switches: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len() + 1);
    let mut i = 0;
    while i < args.len() {
        out.push(args[i].clone());
        if let Some(key) = args[i].strip_prefix("--") {
            if switches.contains(&key) && args.get(i + 1).is_none_or(|v| v.starts_with("--")) {
                out.push("true".to_string());
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{chrome_trace_json, expand_switches, json_string, parse_seeds, Flags, SpanDump};

    #[test]
    fn parses_key_value_pairs() {
        let args: Vec<String> =
            ["--k", "5", "--policy", "uniform"].iter().map(|s| s.to_string()).collect();
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(flags.get("k"), Some("5"));
        assert_eq!(flags.get_parsed("k", 0usize).unwrap(), 5);
        assert_eq!(flags.get("policy"), Some("uniform"));
        assert_eq!(flags.get("missing"), None);
        assert!(flags.require("missing").is_err());
    }

    #[test]
    fn rejects_bare_values_and_dangling_flags() {
        let bare: Vec<String> = vec!["oops".into()];
        assert!(Flags::parse(&bare).is_err());
        let dangling: Vec<String> = vec!["--k".into()];
        assert!(Flags::parse(&dangling).is_err());
    }

    #[test]
    fn get_parsed_falls_back_and_validates() {
        let flags = Flags::parse(&[]).unwrap();
        assert_eq!(flags.get_parsed("k", 7usize).unwrap(), 7);
        let bad: Vec<String> = vec!["--k".into(), "banana".into()];
        let flags = Flags::parse(&bad).unwrap();
        assert!(flags.get_parsed::<usize>("k", 0).is_err());
    }

    #[test]
    fn parse_seeds_accepts_lists_and_rejects_garbage() {
        assert_eq!(parse_seeds("1, 2,3").unwrap(), vec![1, 2, 3]);
        assert!(parse_seeds("1,banana").is_err());
    }

    #[test]
    fn expand_switches_inserts_true_for_bare_flags() {
        let argv: Vec<String> = ["--addr", "x:1", "--slow"].iter().map(|s| s.to_string()).collect();
        let expanded = expand_switches(&argv, &["slow"]);
        let flags = Flags::parse(&expanded).unwrap();
        assert_eq!(flags.get("slow"), Some("true"));
        assert_eq!(flags.get("addr"), Some("x:1"));
        // An explicit value and a trailing flag are both left alone.
        let argv: Vec<String> =
            ["--slow", "false", "--addr", "x:1"].iter().map(|s| s.to_string()).collect();
        let flags = Flags::parse(&expand_switches(&argv, &["slow"])).unwrap();
        assert_eq!(flags.get("slow"), Some("false"));
    }

    #[test]
    fn json_string_escapes_quotes_backslashes_and_control_bytes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\u0009here\"");
    }

    #[test]
    fn chrome_trace_json_emits_complete_events_with_per_trace_tids() {
        let spans = vec![
            SpanDump {
                trace_id: 7,
                span_id: 1,
                parent_id: 0,
                stage: "serve.request".to_string(),
                start_ns: 1_000,
                end_ns: 5_000,
                kv: vec![("batch".to_string(), 3)],
            },
            SpanDump {
                trace_id: 9,
                span_id: 2,
                parent_id: 0,
                stage: "serve.accept".to_string(),
                start_ns: 2_000,
                end_ns: 2_500,
                kv: vec![],
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"serve.request\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"batch\":3"));
        assert!(json.trim_end().ends_with("]}"));
    }
}
