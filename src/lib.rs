#![warn(missing_docs)]
//! # cdim — credit-distribution influence maximization
//!
//! A from-scratch Rust reproduction of Goyal, Bonchi & Lakshmanan,
//! *"A Data-Based Approach to Social Influence Maximization"* (PVLDB 5(1),
//! 2011), together with every substrate the paper's evaluation needs:
//! IC/LT propagation with Monte-Carlo estimation, EM probability learning,
//! LT weight learning, CELF, the MIA (PMIA) and LDAG heuristics,
//! structural baselines, synthetic Flixster/Flickr-shaped datasets, and an
//! experiment harness for every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use cdim::prelude::*;
//!
//! // A synthetic social network + action log (stand-in for a real crawl).
//! let dataset = cdim::datagen::presets::tiny().generate();
//!
//! // Split traces 80/20, train the credit-distribution model.
//! let split = train_test_split(&dataset.log, 5);
//! let model = CdModel::train(&dataset.graph, &split.train, CdModelConfig::default());
//!
//! // Influence maximization: pick 5 seeds with CELF (Algorithm 3).
//! let selection = model.select(5);
//! assert_eq!(selection.seeds.len(), 5);
//!
//! // Predict the spread of any seed set directly from the data.
//! let sigma = model.spread(&selection.seeds);
//! assert!(sigma >= selection.total_gain() - 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | CSR digraph, BFS, PageRank, components, clustering |
//! | [`actionlog`] | the `(user, action, time)` log, propagation DAGs, splits, TSV storage |
//! | [`diffusion`] | IC and LT models, parallel Monte-Carlo spread estimation |
//! | [`learning`] | UN/TV/WC assignments, EM (Saito et al.), LT weights, τ/infl |
//! | [`maxim`] | greedy, CELF, HighDegree/PageRank/Random, MIA, LDAG |
//! | [`core`] | the credit-distribution model (scan, CELF, exact σ_cd) |
//! | [`datagen`] | synthetic graphs, planted influence, cascade logs, presets |
//! | [`metrics`] | RMSE, capture curves, intersections, text tables |
//! | [`serve`] | model snapshots, the concurrent influence-query service, TCP protocol |
//! | [`ingest`] | live log tailing, micro-batched deltas, zero-downtime online retraining |
//! | [`obs`] | metrics registry, latency histograms, Prometheus-text scrape endpoint |

pub use cdim_actionlog as actionlog;
pub use cdim_core as core;
pub use cdim_datagen as datagen;
pub use cdim_diffusion as diffusion;
pub use cdim_graph as graph;
pub use cdim_ingest as ingest;
pub use cdim_learning as learning;
pub use cdim_maxim as maxim;
pub use cdim_metrics as metrics;
pub use cdim_obs as obs;
pub use cdim_serve as serve;
pub use cdim_util as util;

/// The most common imports in one line.
pub mod prelude {
    pub use cdim_actionlog::{
        train_test_split, ActionLog, ActionLogBuilder, ActionLogDelta, PropagationDag,
        TrainTestSplit,
    };
    pub use cdim_core::{
        model::PolicyKind, scan, scan_with, CdModel, CdModelConfig, CdSelector, CdSpreadEvaluator,
        CreditPolicy, CreditStore, ExtendError, ScanError,
    };
    pub use cdim_datagen::{Dataset, DatasetSpec};
    pub use cdim_diffusion::{EdgeProbabilities, IcModel, LtModel, McConfig, MonteCarloEstimator};
    pub use cdim_graph::{DirectedGraph, GraphBuilder, NodeId};
    pub use cdim_ingest::{FollowConfig, IngestDriver, IngestError};
    pub use cdim_learning::{learn_lt_weights, EmConfig, EmLearner, TemporalModel};
    pub use cdim_maxim::{celf_select, greedy_select, Selection, SpreadOracle};
    pub use cdim_serve::{InfluenceService, ModelSnapshot, QueryClient};
    pub use cdim_util::{Parallelism, Rng};
}
