//! Golden-file regression suite for the credit scan's numerics.
//!
//! Every file under `tests/golden/` pins the canonical fingerprint of one
//! trained credit store: the CRC-32 of its snapshot encoding (a canonical
//! byte serialization — sorted entries, fixed layout), its entry counts,
//! and the first few credit entries verbatim. The cases cover two fixed
//! `datagen` presets × both credit policies × λ ∈ {0, 0.001}, each both
//! in full and as a half-log sliding window (`__whalf` files: the newest
//! half of the actions, scanned under the full-log policy — the state a
//! windowed follow session serves after expiry).
//!
//! If the scan's floating-point behavior ever drifts — a reordered
//! accumulation, a "harmless" refactor of the kernel, a policy tweak —
//! this suite fails with a readable diff of the first divergent entries
//! instead of a bare checksum mismatch.
//!
//! Regenerate after an *intentional* numeric change with:
//!
//! ```text
//! CDIM_BLESS=1 cargo test --test golden
//! ```

use cdim::core::{scan, CreditPolicy, CreditStore};
use cdim::datagen::presets;
use cdim::serve::ModelSnapshot;
use cdim::util::crc32;
use std::fmt::Write as _;
use std::path::PathBuf;

/// How many leading credit entries each golden file records verbatim.
const SAMPLE_ENTRIES: usize = 40;

/// One pinned configuration.
struct Case {
    /// Preset label (also the file-name stem).
    preset: &'static str,
    /// `uniform` or `time-aware`.
    policy: &'static str,
    /// Truncation threshold.
    lambda: f64,
    /// Scan only the newest half of the log's actions (the policy is
    /// still learned from the full log — the fixed-policy contract).
    window_half: bool,
}

/// A flattened credit entry: `(action, v, u, Γ bits)`.
type Entry = (u32, u32, u32, u64);

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    for preset in ["tiny", "flixster_small_div8"] {
        for policy in ["uniform", "time-aware"] {
            for lambda in [0.0, 0.001] {
                for window_half in [false, true] {
                    out.push(Case { preset, policy, lambda, window_half });
                }
            }
        }
    }
    out
}

/// Actions expired by a half-log window over `num_actions` actions.
fn half_window_cut(num_actions: usize) -> usize {
    num_actions - num_actions.div_ceil(2)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn file_name(case: &Case) -> String {
    let lambda = if case.lambda == 0.0 { "l0" } else { "l0_001" };
    let window = if case.window_half { "__whalf" } else { "" };
    format!("{}__{}__{}{}.golden", case.preset, case.policy, lambda, window)
}

/// Trains the case's credit store (thread count deliberately left at
/// `auto`: the scan is bit-identical for every parallelism, so the
/// fingerprint must not depend on the host's core count or
/// `$CDIM_THREADS`).
fn train(case: &Case) -> CreditStore {
    let spec = match case.preset {
        "tiny" => presets::tiny(),
        "flixster_small_div8" => presets::flixster_small().scaled_down(8),
        other => panic!("unknown golden preset {other}"),
    };
    let ds = spec.generate();
    let policy = match case.policy {
        "uniform" => CreditPolicy::Uniform,
        "time-aware" => CreditPolicy::time_aware(&ds.graph, &ds.log),
        other => panic!("unknown golden policy {other}"),
    };
    let log = if case.window_half {
        ds.log.split_off_prefix(half_window_cut(ds.log.num_actions())).1
    } else {
        ds.log
    };
    scan(&ds.graph, &log, &policy, case.lambda).expect("golden training inputs are valid")
}

/// The store's canonical fingerprint: snapshot-encoding CRC, totals, and
/// the first [`SAMPLE_ENTRIES`] entries in canonical order.
fn fingerprint(store: &CreditStore) -> (u32, usize, usize, Vec<Entry>) {
    let dump = store.dump();
    let samples: Vec<Entry> = dump
        .credits
        .iter()
        .enumerate()
        .flat_map(|(a, entries)| {
            entries.iter().map(move |&(v, u, c)| (a as u32, v, u, c.to_bits()))
        })
        .take(SAMPLE_ENTRIES)
        .collect();
    let total_entries = store.total_entries();
    let actions = store.num_actions();
    // CRC over the snapshot *body*: the encoding ends in its own CRC-32
    // trailer, so checksumming the whole file would collapse every case
    // to the fixed crc(data ‖ crc(data)) residue. The body CRC equals the
    // trailer a `cdim snapshot` file would carry.
    let bytes = ModelSnapshot::from_store(store.clone()).to_bytes();
    let crc = crc32(&bytes[..bytes.len() - 4]);
    (crc, total_entries, actions, samples)
}

fn render(
    case: &Case,
    crc: u32,
    total_entries: usize,
    actions: usize,
    samples: &[Entry],
) -> String {
    let mut out = String::new();
    out.push_str("# cdim golden credit-store fingerprint\n");
    out.push_str("# regenerate after an intentional numeric change:\n");
    out.push_str("#   CDIM_BLESS=1 cargo test --test golden\n");
    let _ = writeln!(out, "preset={}", case.preset);
    let _ = writeln!(out, "policy={}", case.policy);
    let _ = writeln!(out, "lambda={}", case.lambda);
    let _ = writeln!(out, "window={}", if case.window_half { "half" } else { "full" });
    let _ = writeln!(out, "crc32={crc:#010x}");
    let _ = writeln!(out, "total_entries={total_entries}");
    let _ = writeln!(out, "actions={actions}");
    let _ = writeln!(out, "samples={}", samples.len());
    for &(a, v, u, bits) in samples {
        let _ = writeln!(out, "sample={a} {v} {u} {bits:016x}");
    }
    out
}

/// Parses a golden file back into `(crc, total_entries, actions, samples)`.
fn parse(text: &str, path: &std::path::Path) -> (u32, usize, usize, Vec<Entry>) {
    let mut crc = None;
    let mut total_entries = None;
    let mut actions = None;
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .unwrap_or_else(|| panic!("{}: malformed line {line:?}", path.display()));
        match key {
            "crc32" => {
                let raw = value.trim_start_matches("0x");
                crc = Some(u32::from_str_radix(raw, 16).expect("crc32 hex"));
            }
            "total_entries" => total_entries = Some(value.parse().expect("total_entries")),
            "actions" => actions = Some(value.parse().expect("actions")),
            "sample" => {
                let mut parts = value.split_whitespace();
                let a = parts.next().expect("sample action").parse().expect("action");
                let v = parts.next().expect("sample v").parse().expect("v");
                let u = parts.next().expect("sample u").parse().expect("u");
                let bits = u64::from_str_radix(parts.next().expect("sample bits"), 16)
                    .expect("credit bits");
                samples.push((a, v, u, bits));
            }
            _ => {} // preset/policy/lambda/samples are informational
        }
    }
    (
        crc.expect("golden file must pin crc32"),
        total_entries.expect("golden file must pin total_entries"),
        actions.expect("golden file must pin actions"),
        samples,
    )
}

/// Builds the human-readable report of the first divergent entries.
fn diff_report(case: &Case, stored: &[Entry], computed: &[Entry]) -> String {
    let mut report = format!(
        "golden mismatch for preset={} policy={} lambda={} window={}\n",
        case.preset,
        case.policy,
        case.lambda,
        if case.window_half { "half" } else { "full" }
    );
    let mut shown = 0;
    for (i, (s, c)) in stored.iter().zip(computed.iter()).enumerate() {
        if s != c && shown < 5 {
            let _ = writeln!(
                report,
                "  entry {i}: stored  (action {}, {} -> {}, credit {:.17})\n\
                 \x20          computed (action {}, {} -> {}, credit {:.17})",
                s.0,
                s.1,
                s.2,
                f64::from_bits(s.3),
                c.0,
                c.1,
                c.2,
                f64::from_bits(c.3),
            );
            shown += 1;
        }
    }
    if stored.len() != computed.len() {
        let _ = writeln!(
            report,
            "  sample count differs: stored {}, computed {}",
            stored.len(),
            computed.len()
        );
    }
    if shown == 0 && stored.len() == computed.len() {
        report.push_str(
            "  the first sampled entries agree — the divergence is past the sample window \
             (entry counts or later credits changed)\n",
        );
    }
    report.push_str("  if this change is intentional: CDIM_BLESS=1 cargo test --test golden\n");
    report
}

#[test]
fn credit_scan_matches_golden_fingerprints() {
    let bless = std::env::var_os("CDIM_BLESS").is_some();
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut failures = Vec::new();
    for case in cases() {
        let store = train(&case);
        let (crc, total_entries, actions, samples) = fingerprint(&store);
        let path = dir.join(file_name(&case));
        if bless {
            std::fs::write(&path, render(&case, crc, total_entries, actions, &samples))
                .expect("write golden file");
            println!("blessed {}", path.display());
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(run `CDIM_BLESS=1 cargo test --test golden` to create golden files)",
                path.display()
            )
        });
        let (want_crc, want_entries, want_actions, want_samples) = parse(&text, &path);
        if crc == want_crc {
            // The CRC covers every byte of the canonical encoding; the
            // cheap structural fields must agree if it does.
            assert_eq!(total_entries, want_entries, "{}", path.display());
            assert_eq!(actions, want_actions, "{}", path.display());
            assert_eq!(samples, want_samples, "{}", path.display());
            continue;
        }
        let mut report = diff_report(&case, &want_samples, &samples);
        let _ = writeln!(
            report,
            "  crc32: stored {want_crc:#010x}, computed {crc:#010x}\n\
             \x20 total_entries: stored {want_entries}, computed {total_entries}\n\
             \x20 actions: stored {want_actions}, computed {actions}"
        );
        failures.push(report);
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The incremental path must land on the same golden fingerprints: extend
/// a prefix-trained store over the remaining actions and compare its CRC
/// against the committed full-scan value.
#[test]
fn incremental_extend_matches_golden_fingerprints() {
    if std::env::var_os("CDIM_BLESS").is_some() {
        return; // fingerprints are being rewritten; nothing to compare yet
    }
    for case in cases().into_iter().filter(|c| c.preset == "tiny" && !c.window_half) {
        let spec = presets::tiny();
        let ds = spec.generate();
        let policy = match case.policy {
            "uniform" => CreditPolicy::Uniform,
            _ => CreditPolicy::time_aware(&ds.graph, &ds.log),
        };
        let split = ds.log.num_actions() * 9 / 10;
        let (prefix, delta) = ds.log.split_at_action(split);
        let mut store = scan(&ds.graph, &prefix, &policy, case.lambda).unwrap();
        store.apply_delta(&ds.graph, &delta, &policy, cdim::util::Parallelism::auto()).unwrap();
        let (crc, ..) = fingerprint(&store);

        let path = golden_dir().join(file_name(&case));
        let text = std::fs::read_to_string(&path).expect("golden file exists");
        let (want_crc, ..) = parse(&text, &path);
        assert_eq!(
            crc,
            want_crc,
            "incremental extend diverged from the golden full scan for {}",
            file_name(&case)
        );
    }
}

/// The retraction path must land on the window fingerprints: scan the
/// full log, retract the expired half through `retract_delta`, and
/// compare against the committed `__whalf` golden — the sliding-window
/// invariant pinned to bytes on disk.
#[test]
fn incremental_retract_matches_golden_window_fingerprints() {
    if std::env::var_os("CDIM_BLESS").is_some() {
        return; // fingerprints are being rewritten; nothing to compare yet
    }
    for case in cases().into_iter().filter(|c| c.window_half) {
        let spec = match case.preset {
            "tiny" => presets::tiny(),
            _ => presets::flixster_small().scaled_down(8),
        };
        let ds = spec.generate();
        let policy = match case.policy {
            "uniform" => CreditPolicy::Uniform,
            _ => CreditPolicy::time_aware(&ds.graph, &ds.log),
        };
        let expired = ds.log.split_off_prefix(half_window_cut(ds.log.num_actions())).0;
        let mut store = scan(&ds.graph, &ds.log, &policy, case.lambda).unwrap();
        store.retract_delta(&ds.graph, &expired, &policy, cdim::util::Parallelism::auto()).unwrap();
        let (crc, ..) = fingerprint(&store);

        let path = golden_dir().join(file_name(&case));
        let text = std::fs::read_to_string(&path).expect("golden file exists");
        let (want_crc, ..) = parse(&text, &path);
        assert_eq!(
            crc,
            want_crc,
            "retract diverged from the golden window scan for {}",
            file_name(&case)
        );
    }
}
