//! Datasets survive a round trip through the TSV storage layer, and the
//! models trained before and after the trip agree.

use cdim::actionlog::storage;
use cdim::prelude::*;

#[test]
fn generated_dataset_round_trips_through_tsv() {
    let ds = cdim::datagen::presets::tiny().generate();

    let dir = std::env::temp_dir().join("cdim_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("graph.tsv");
    let log_path = dir.join("log.tsv");

    storage::save_graph(&ds.graph, &graph_path).unwrap();
    storage::save_action_log(&ds.log, &log_path).unwrap();

    let graph = storage::load_graph(&graph_path).unwrap();
    let log = storage::load_action_log(&log_path, graph.num_nodes()).unwrap();
    assert_eq!(graph, ds.graph);
    assert_eq!(log, ds.log);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_trained_on_restored_data_selects_identical_seeds() {
    let ds = cdim::datagen::presets::tiny().generate();

    // Round trip through in-memory TSV buffers.
    let mut graph_buf = Vec::new();
    storage::write_graph(&ds.graph, &mut graph_buf).unwrap();
    let graph = storage::read_graph(&graph_buf[..]).unwrap();

    let mut log_buf = Vec::new();
    storage::write_action_log(&ds.log, &mut log_buf).unwrap();
    let log = storage::read_action_log(&log_buf[..], graph.num_nodes()).unwrap();

    let before = CdModel::train(&ds.graph, &ds.log, CdModelConfig::default());
    let after = CdModel::train(&graph, &log, CdModelConfig::default());
    assert_eq!(before.select(5).seeds, after.select(5).seeds);
    assert!((before.spread(&[0, 1]) - after.spread(&[0, 1])).abs() < 1e-12);
}
