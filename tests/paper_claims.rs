//! The paper's load-bearing claims, checked end-to-end on generated data.

use cdim::metrics::rmse;
use cdim::prelude::*;

fn dataset() -> Dataset {
    // Large enough for learning signal, small enough for CI.
    cdim::datagen::presets::flixster_small().scaled_down(8).generate()
}

/// §3: methods that learn probabilities from traces predict held-out
/// spread better than degree-driven assignment (WC).
#[test]
fn learned_probabilities_beat_weighted_cascade() {
    let ds = dataset();
    let split = train_test_split(&ds.log, 5);
    let em = EmLearner::new(&ds.graph, &split.train).learn(EmConfig::default()).0;
    let wc = cdim::learning::assign::weighted_cascade(&ds.graph);
    let mc = McConfig::quick(150);

    let mut pairs_em = Vec::new();
    let mut pairs_wc = Vec::new();
    for a in split.test.actions() {
        let dag = PropagationDag::build(&split.test, &ds.graph, a);
        let initiators = dag.initiators();
        let actual = dag.len() as f64;
        pairs_em.push((
            actual,
            MonteCarloEstimator::new(IcModel::new(&ds.graph, &em), mc).spread(&initiators),
        ));
        pairs_wc.push((
            actual,
            MonteCarloEstimator::new(IcModel::new(&ds.graph, &wc), mc).spread(&initiators),
        ));
    }
    let (rmse_em, rmse_wc) = (rmse(&pairs_em), rmse(&pairs_wc));
    assert!(rmse_em < rmse_wc, "EM ({rmse_em:.1}) must beat WC ({rmse_wc:.1})");
}

/// §6 (Figs 3–4): the CD model predicts held-out spread at least as well
/// as the EM-fitted IC model.
#[test]
fn cd_predicts_at_least_as_well_as_ic_em() {
    let ds = dataset();
    let split = train_test_split(&ds.log, 5);
    let model = CdModel::train(&ds.graph, &split.train, CdModelConfig::default());
    let em = EmLearner::new(&ds.graph, &split.train).learn(EmConfig::default()).0;
    let mc = McConfig::quick(150);

    let mut pairs_cd = Vec::new();
    let mut pairs_ic = Vec::new();
    for a in split.test.actions() {
        let dag = PropagationDag::build(&split.test, &ds.graph, a);
        let initiators = dag.initiators();
        let actual = dag.len() as f64;
        pairs_cd.push((actual, model.spread(&initiators)));
        pairs_ic.push((
            actual,
            MonteCarloEstimator::new(IcModel::new(&ds.graph, &em), mc).spread(&initiators),
        ));
    }
    let (rmse_cd, rmse_ic) = (rmse(&pairs_cd), rmse(&pairs_ic));
    // Allow a sliver of slack: at this miniature scale the two are close;
    // the full-scale experiments show the real gap.
    assert!(rmse_cd <= rmse_ic * 1.1, "CD ({rmse_cd:.1}) must not lose to IC+EM ({rmse_ic:.1})");
}

/// §5: σ_cd is monotone and submodular on generated data (Theorem 2),
/// checked through the public evaluator.
#[test]
fn sigma_cd_is_monotone_and_submodular_on_generated_data() {
    let ds = dataset();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let eval = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy);

    let active: Vec<u32> = (0..ds.graph.num_nodes() as u32)
        .filter(|&u| ds.log.actions_performed_by(u) > 0)
        .take(8)
        .collect();

    // Monotone along a growing chain.
    let mut prev = 0.0;
    for i in 0..active.len() {
        let s = eval.spread(&active[..=i]);
        assert!(s + 1e-9 >= prev, "monotonicity violated at {i}");
        prev = s;
    }

    // Submodular: marginal gain of x shrinks as the base set grows.
    let x = *active.last().unwrap();
    for i in 0..active.len() - 2 {
        let small = &active[..i];
        let large = &active[..i + 1];
        let gain = |base: &[u32]| {
            let mut with_x = base.to_vec();
            with_x.push(x);
            eval.spread(&with_x) - eval.spread(base)
        };
        assert!(gain(small) + 1e-9 >= gain(large), "submodularity violated at prefix {i}");
    }
}

/// §6 (Fig 5): CD chooses different seeds than the ad-hoc-probability IC
/// pipeline — the motivating observation of the whole paper.
#[test]
fn cd_seeds_differ_from_wc_ic_seeds() {
    let ds = dataset();
    let split = train_test_split(&ds.log, 5);
    let model = CdModel::train(&ds.graph, &split.train, CdModelConfig::default());
    let cd_seeds = model.select(5).seeds;

    let wc = cdim::learning::assign::weighted_cascade(&ds.graph);
    let est = MonteCarloEstimator::new(IcModel::new(&ds.graph, &wc), McConfig::quick(100));
    let wc_seeds = celf_select(&est, 5).seeds;

    let overlap = cdim::metrics::intersection_size(&cd_seeds, &wc_seeds);
    // At this miniature scale (≈200 users) the handful of genuinely
    // central users is found by everyone, so we only require the sets to
    // disagree; the full-scale fig5/table2 runs show near-disjointness.
    assert!(overlap < cd_seeds.len(), "CD {cd_seeds:?} vs WC-IC {wc_seeds:?} must not coincide");
}

/// The EM learner recovers the *planted* probabilities on well-observed
/// edges — the generator and learner are mutually consistent.
#[test]
fn em_recovers_planted_probabilities_on_well_observed_edges() {
    let ds = cdim::datagen::presets::tiny().generate();
    let learner = EmLearner::new(&ds.graph, &ds.log);
    let (learned, _) = learner.learn(EmConfig::default());

    let mut diffs = Vec::new();
    for u in 0..ds.graph.num_nodes() as u32 {
        for pos in ds.graph.in_range(u) {
            if learner.trials_at(pos) >= 30 {
                let v = ds.graph.in_sources()[pos];
                let out_pos = ds.graph.out_edge_position(v, u).unwrap();
                let truth = ds.truth.probs.out(out_pos);
                diffs.push((learned.in_view()[pos] - truth).abs());
            }
        }
    }
    assert!(diffs.len() >= 10, "need well-observed edges, got {}", diffs.len());
    let mean_abs: f64 = diffs.iter().sum::<f64>() / diffs.len() as f64;
    // Exogenous adoptions and per-action virality bias the estimates (by
    // design — that is the realistic misspecification), but EM must still
    // land in the right neighborhood on high-trial edges.
    assert!(mean_abs < 0.2, "mean |learned − planted| = {mean_abs}");
}
