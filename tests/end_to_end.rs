//! End-to-end pipeline tests through the public facade.

use cdim::prelude::*;

fn dataset() -> Dataset {
    cdim::datagen::presets::tiny().generate()
}

#[test]
fn full_pipeline_train_select_predict() {
    let ds = dataset();
    let split = train_test_split(&ds.log, 5);
    assert!(split.train.num_actions() > split.test.num_actions());

    let model = CdModel::train(&ds.graph, &split.train, CdModelConfig::default());
    let selection = model.select(5);
    assert_eq!(selection.seeds.len(), 5);

    // Gains are non-increasing (submodularity surfaced through greedy).
    for w in selection.marginal_gains.windows(2) {
        assert!(w[0] >= w[1] - 1e-9, "gains must not increase: {w:?}");
    }

    // Every seed actually appears in the training log.
    for &s in &selection.seeds {
        assert!(split.train.actions_performed_by(s) > 0);
    }

    // Spread prediction works for arbitrary sets, and is monotone.
    let s1 = model.spread(&selection.seeds[..1]);
    let s5 = model.spread(&selection.seeds);
    assert!(s5 >= s1);
}

#[test]
fn cd_selection_equals_generic_greedy_on_exact_oracle() {
    // The specialized Algorithm 3 must agree with generic greedy over the
    // exact σ_cd oracle (λ = 0) on real generated data, not just on the
    // hand-built unit-test instances.
    let ds = dataset();
    let policy = CreditPolicy::Uniform;
    let store = scan(&ds.graph, &ds.log, &policy, 0.0).unwrap();
    let cd = CdSelector::new(store).select(4);

    let evaluator = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy);
    let candidates: Vec<u32> =
        (0..ds.graph.num_nodes() as u32).filter(|&u| ds.log.actions_performed_by(u) > 0).collect();
    let greedy = cdim::maxim::greedy::greedy_select_from(&evaluator, 4, &candidates);

    let cd_sigma = evaluator.spread(&cd.seeds);
    let greedy_sigma = evaluator.spread(&greedy.seeds);
    assert!((cd_sigma - greedy_sigma).abs() < 1e-9, "cd {cd_sigma} vs greedy {greedy_sigma}");
}

#[test]
fn parallel_scan_is_deterministic_on_generated_data() {
    // The facade-level version of the pipeline guarantee: on a realistic
    // generated dataset, every thread budget produces the same canonical
    // dump — the property that makes `--threads` a pure speed knob.
    let ds = dataset();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    for lambda in [0.0, 0.001] {
        let baseline =
            scan_with(&ds.graph, &ds.log, &policy, lambda, Parallelism::single()).unwrap().dump();
        for threads in [2usize, 3, 8] {
            let dump = scan_with(&ds.graph, &ds.log, &policy, lambda, Parallelism::fixed(threads))
                .unwrap()
                .dump();
            assert!(dump == baseline, "threads {threads}, lambda {lambda}");
        }
        // The auto default is the same scan, so it obeys the same law.
        let auto = scan(&ds.graph, &ds.log, &policy, lambda).unwrap().dump();
        assert!(auto == baseline, "auto parallelism diverged at lambda {lambda}");
    }
}

#[test]
fn truncation_trades_accuracy_for_memory_monotonically() {
    let ds = dataset();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let mut prev_entries = usize::MAX;
    for lambda in [0.0, 0.0001, 0.001, 0.01, 0.1] {
        let store = scan(&ds.graph, &ds.log, &policy, lambda).unwrap();
        assert!(store.total_entries() <= prev_entries, "entries must shrink as λ grows");
        prev_entries = store.total_entries();
    }
}

#[test]
fn mc_estimators_run_through_facade() {
    let ds = dataset();
    let em = EmLearner::new(&ds.graph, &ds.log).learn(EmConfig::default()).0;
    let est = MonteCarloEstimator::new(IcModel::new(&ds.graph, &em), McConfig::quick(200));
    let spread = est.spread(&[0, 1, 2]);
    assert!(spread >= 0.0);

    let weights = learn_lt_weights(&ds.graph, &ds.log);
    let lt = MonteCarloEstimator::new(LtModel::new(&ds.graph, &weights), McConfig::quick(200));
    assert!(lt.spread(&[0, 1, 2]) >= 3.0 - 1e-9);
}

#[test]
fn celf_and_greedy_agree_through_facade() {
    let ds = dataset();
    let policy = CreditPolicy::Uniform;
    let evaluator = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy);
    let g = greedy_select(&evaluator, 3);
    let c = celf_select(&evaluator, 3);
    assert_eq!(g.seeds, c.seeds);
    assert!(c.evaluations <= g.evaluations);
}
