//! The `cdim` CLI binary works end-to-end on TSV datasets.

use std::process::Command;

fn cdim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cdim"))
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cdim_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_select_predict_pipeline() {
    let dir = tempdir("pipeline");

    let out = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");
    assert!(graph.exists() && log.exists());

    let out = cdim()
        .args(["stats", "--graph", graph.to_str().unwrap(), "--log", log.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes"), "{text}");
    assert!(text.contains("propagations"), "{text}");

    let out = cdim()
        .args([
            "select",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--k",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 5, "header + rule + 3 seeds: {text}");

    let out = cdim()
        .args([
            "predict",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--seeds",
            "0,1,2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sigma_cd"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_usage() {
    // No command.
    let out = cdim().output().unwrap();
    assert!(!out.status.success());

    // Unknown command.
    let out = cdim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing required flag.
    let out = cdim().args(["select", "--k", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));

    // Malformed seeds list.
    let dir = tempdir("badusage");
    let g = dir.join("graph.tsv");
    let l = dir.join("log.tsv");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let out = cdim()
        .args([
            "predict",
            "--graph",
            g.to_str().unwrap(),
            "--log",
            l.to_str().unwrap(),
            "--seeds",
            "0,banana",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_out_of_range_seed() {
    let dir = tempdir("range");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let out = cdim()
        .args([
            "predict",
            "--graph",
            dir.join("graph.tsv").to_str().unwrap(),
            "--log",
            dir.join("log.tsv").to_str().unwrap(),
            "--seeds",
            "999999",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}
