//! The `cdim` CLI binary works end-to-end on TSV datasets.

use std::process::Command;

fn cdim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cdim"))
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cdim_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_select_predict_pipeline() {
    let dir = tempdir("pipeline");

    let out = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");
    assert!(graph.exists() && log.exists());

    let out = cdim()
        .args(["stats", "--graph", graph.to_str().unwrap(), "--log", log.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes"), "{text}");
    assert!(text.contains("propagations"), "{text}");

    let out = cdim()
        .args([
            "select",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--k",
            "3",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 5, "header + rule + 3 seeds: {text}");

    let out = cdim()
        .args([
            "predict",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--seeds",
            "0,1,2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sigma_cd"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_serve_query_pipeline() {
    use std::io::BufRead;

    let dir = tempdir("serving");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");
    let snap = dir.join("model.snap");

    // Train + persist (on an explicit thread budget).
    let out = cdim()
        .args([
            "snapshot",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(snap.exists());

    // The snapshot reloads bit-identically, and the scan's thread-count
    // invariance makes the file itself reproducible: retraining the same
    // data single-threaded yields the exact same bytes.
    let bytes = std::fs::read(&snap).unwrap();
    let restored = cdim::serve::ModelSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(restored.to_bytes(), bytes);
    let snap1 = dir.join("model_t1.snap");
    let out = cdim()
        .args([
            "snapshot",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--out",
            snap1.to_str().unwrap(),
            "--threads",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::read(&snap1).unwrap(), bytes, "snapshot bytes depend on --threads");

    // Serve on an ephemeral port; the CLI prints the bound address.
    let mut server = cdim()
        .args(["serve", "--snapshot", snap.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    std::io::BufReader::new(server.stdout.take().unwrap()).read_line(&mut line).unwrap();
    let addr = line.trim().strip_prefix("listening on ").expect("address line").to_string();

    // Remote top-k equals the in-process answer on the same snapshot.
    let out = cdim().args(["query", "--addr", &addr, "--op", "topk", "--k", "3"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let offline = restored.selector().clone().select(3);
    for seed in &offline.seeds {
        assert!(text.contains(&seed.to_string()), "missing seed {seed} in:\n{text}");
    }

    let out = cdim()
        .args(["query", "--addr", &addr, "--op", "spread", "--seeds", "0,1,2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sigma_cd"));

    let out = cdim().args(["query", "--addr", &addr, "--op", "info"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("users"));

    server.kill().ok();
    server.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_append_equals_full_training_byte_for_byte() {
    let dir = tempdir("append");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");

    // Split the generated log into a prefix TSV and a delta TSV of the
    // last ~10% of actions, via the library.
    let g = cdim::actionlog::storage::load_graph(&graph).unwrap();
    let full_log = cdim::actionlog::storage::load_action_log(&log, g.num_nodes()).unwrap();
    let split = full_log.num_actions() * 9 / 10;
    let (prefix, delta) = full_log.split_at_action(split);
    assert!(delta.num_new_actions() > 0);
    let prefix_path = dir.join("prefix.tsv");
    let delta_path = dir.join("delta.tsv");
    cdim::actionlog::storage::save_action_log(&prefix, &prefix_path).unwrap();
    cdim::actionlog::storage::save_action_log(delta.additions(), &delta_path).unwrap();

    // Full training on the combined log (uniform policy: log-independent,
    // so prefix- and full-trained models share it exactly).
    let full_snap = dir.join("full.snap");
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--out",
            full_snap.to_str().unwrap(),
            "--policy",
            "uniform",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Base training on the prefix, then the append-only refresh.
    let base_snap = dir.join("base.snap");
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            prefix_path.to_str().unwrap(),
            "--out",
            base_snap.to_str().unwrap(),
            "--policy",
            "uniform",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let extended_snap = dir.join("extended.snap");
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            prefix_path.to_str().unwrap(),
            "--append",
            delta_path.to_str().unwrap(),
            "--base",
            base_snap.to_str().unwrap(),
            "--out",
            extended_snap.to_str().unwrap(),
            "--policy",
            "uniform",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("appended"), "{text}");

    // The incremental snapshot is byte-identical to full retraining.
    assert_eq!(
        std::fs::read(&extended_snap).unwrap(),
        std::fs::read(&full_snap).unwrap(),
        "append-mode snapshot must equal the full-training snapshot"
    );

    // Append mode without an explicit --policy is refused: snapshots do
    // not record the training policy, so a silently defaulted mismatch
    // would corrupt the model.
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--append",
            delta_path.to_str().unwrap(),
            "--base",
            base_snap.to_str().unwrap(),
            "--out",
            dir.join("nopolicy.snap").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--policy"));

    // A conflicting --lambda is refused (λ is fixed at training time).
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--policy",
            "uniform",
            "--append",
            delta_path.to_str().unwrap(),
            "--base",
            base_snap.to_str().unwrap(),
            "--out",
            extended_snap.to_str().unwrap(),
            "--lambda",
            "0.5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("lambda"));

    // Appending with a graph from a different universe is refused (the
    // delta TSV's base is derived from the snapshot, so the universe
    // check is the guard that catches mixed-up datasets).
    let dir2 = tempdir("append_mismatch");
    let gen = cdim()
        .args([
            "generate",
            "--preset",
            "flixster_small",
            "--scale",
            "8",
            "--out",
            dir2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let out = cdim()
        .args([
            "train",
            "--graph",
            dir2.join("graph.tsv").to_str().unwrap(),
            "--policy",
            "uniform",
            "--append",
            delta_path.to_str().unwrap(),
            "--base",
            base_snap.to_str().unwrap(),
            "--out",
            dir.join("oops.snap").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("users"));

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn predict_with_mc_crosscheck_and_threads() {
    let dir = tempdir("mcpredict");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let out = cdim()
        .args([
            "predict",
            "--graph",
            dir.join("graph.tsv").to_str().unwrap(),
            "--log",
            dir.join("log.tsv").to_str().unwrap(),
            "--seeds",
            "0,1",
            "--mc",
            "ic",
            "--sims",
            "200",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sigma_cd"), "{text}");
    assert!(text.contains("sigma_ic/wc") && text.contains("2 threads"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_usage() {
    // No command.
    let out = cdim().output().unwrap();
    assert!(!out.status.success());

    // Unknown command.
    let out = cdim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing required flag.
    let out = cdim().args(["select", "--k", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));

    // Malformed seeds list.
    let dir = tempdir("badusage");
    let g = dir.join("graph.tsv");
    let l = dir.join("log.tsv");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let out = cdim()
        .args([
            "predict",
            "--graph",
            g.to_str().unwrap(),
            "--log",
            l.to_str().unwrap(),
            "--seeds",
            "0,banana",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_out_of_range_seed() {
    let dir = tempdir("range");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let out = cdim()
        .args([
            "predict",
            "--graph",
            dir.join("graph.tsv").to_str().unwrap(),
            "--log",
            dir.join("log.tsv").to_str().unwrap(),
            "--seeds",
            "999999",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn follow_matches_offline_training_byte_for_byte() {
    let dir = tempdir("follow");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");

    // Offline one-shot training over the completed log.
    let offline = dir.join("offline.snap");
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--policy",
            "uniform",
            "--out",
            offline.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Online: follow the same file until idle, then export the snapshot.
    let online = dir.join("online.snap");
    let out = cdim()
        .args([
            "follow",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--snapshot",
            dir.join("model.ckpt").to_str().unwrap(),
            "--policy",
            "uniform",
            "--batch-actions",
            "3",
            "--poll-ms",
            "5",
            "--idle-exit-ms",
            "50",
            "--export-snapshot",
            online.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&online).unwrap(),
        std::fs::read(&offline).unwrap(),
        "streamed training must be byte-identical to offline training"
    );
    // The checkpoint is also in place for a future resume.
    assert!(dir.join("model.ckpt").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_follow_equals_train_on_window_byte_for_byte() {
    let dir = tempdir("window");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");

    // Offline: train on just the last 5 actions of the log.
    let offline = dir.join("window.snap");
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--policy",
            "uniform",
            "--window",
            "5",
            "--out",
            offline.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Online: follow the whole log with a 5-action sliding window; every
    // older action is retracted along the way.
    let online = dir.join("window_online.snap");
    let out = cdim()
        .args([
            "follow",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--snapshot",
            dir.join("window.ckpt").to_str().unwrap(),
            "--policy",
            "uniform",
            "--window-actions",
            "5",
            "--batch-actions",
            "3",
            "--poll-ms",
            "5",
            "--idle-exit-ms",
            "50",
            "--export-snapshot",
            online.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&online).unwrap(),
        std::fs::read(&offline).unwrap(),
        "windowed follow must equal training on just the window"
    );

    // Guard rails: a zero window, --window with --append, and both
    // follow window flags at once are all refused.
    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--window",
            "0",
            "--out",
            dir.join("zero.snap").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--window"));

    let out = cdim()
        .args([
            "train",
            "--graph",
            graph.to_str().unwrap(),
            "--policy",
            "uniform",
            "--append",
            log.to_str().unwrap(),
            "--base",
            offline.to_str().unwrap(),
            "--window",
            "5",
            "--out",
            dir.join("oops.snap").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--append"));

    let out = cdim()
        .args([
            "follow",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--snapshot",
            dir.join("other.ckpt").to_str().unwrap(),
            "--window-actions",
            "5",
            "--window-age",
            "5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));

    std::fs::remove_dir_all(&dir).ok();
}

/// One HTTP/1.1 GET against the scrape endpoint, returning the raw
/// response (headers + body).
fn scrape(addr: &str, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: cdim\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn serve_metrics_endpoint_scrapes_and_stats_report_quantiles() {
    use std::io::BufRead;

    let dir = tempdir("metrics");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let snap = dir.join("model.snap");
    let out = cdim()
        .args([
            "snapshot",
            "--graph",
            dir.join("graph.tsv").to_str().unwrap(),
            "--log",
            dir.join("log.tsv").to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let mut server = cdim()
        .args([
            "serve",
            "--snapshot",
            snap.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Stdout announces both endpoints, one per line.
    let mut reader = std::io::BufReader::new(server.stdout.take().unwrap());
    let mut metrics_addr = String::new();
    let mut query_addr = String::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if let Some(a) = line.trim().strip_prefix("metrics on ") {
            metrics_addr = a.to_string();
        } else if let Some(a) = line.trim().strip_prefix("listening on ") {
            query_addr = a.to_string();
        }
    }
    assert!(!metrics_addr.is_empty() && !query_addr.is_empty());

    // Two identical spreads: one miss, one hit, two query latencies.
    for _ in 0..2 {
        let out = cdim()
            .args(["query", "--addr", &query_addr, "--op", "spread", "--seeds", "0,1"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }

    // `cdim stats` renders the op-6 dump: counters and latency quantiles.
    let out = cdim().args(["stats", "--addr", &query_addr]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("cdim_serve_queries_total"), "{text}");
    assert!(text.contains("cdim_serve_query_seconds"), "{text}");
    assert!(text.contains("p50") && text.contains("p99"), "{text}");

    // The scrape endpoint speaks Prometheus text exposition.
    let response = scrape(&metrics_addr, "/metrics");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains("# TYPE cdim_serve_queries_total counter"), "{body}");
    assert!(body.contains("cdim_serve_queries_total 2"), "{body}");
    assert!(body.contains("cdim_serve_query_seconds{quantile=\"0.99\"}"), "{body}");
    assert!(body.contains("cdim_serve_cache_hits_total 1"), "{body}");
    // Unknown paths are 404, not a hang or a crash.
    assert!(scrape(&metrics_addr, "/nope").starts_with("HTTP/1.1 404"));

    server.kill().ok();
    server.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn follow_serves_queries_and_stats_while_tailing() {
    use std::io::BufRead;

    let dir = tempdir("follow_serve");
    let gen = cdim()
        .args(["generate", "--preset", "tiny", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let graph = dir.join("graph.tsv");
    let log = dir.join("log.tsv");

    let mut follower = cdim()
        .args([
            "follow",
            "--graph",
            graph.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--snapshot",
            dir.join("model.ckpt").to_str().unwrap(),
            "--policy",
            "uniform",
            "--poll-ms",
            "5",
            "--serve",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut reader = std::io::BufReader::new(follower.stdout.take().unwrap());
    let mut addr = String::new();
    let mut metrics_addr = String::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if let Some(a) = line.trim().strip_prefix("metrics on ") {
            metrics_addr = a.to_string();
        } else if let Some(a) = line.trim().strip_prefix("listening on ") {
            addr = a.to_string();
        }
    }
    assert!(!addr.is_empty() && !metrics_addr.is_empty());

    // Queries are answered while the follower ingests; retry briefly so
    // the assertion waits for at least one published batch.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut version = 0u64;
    while std::time::Instant::now() < deadline {
        let out = cdim().args(["stats", "--addr", &addr]).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("queries served"), "{text}");
        let field = |name: &str| -> u64 {
            text.lines()
                .find(|l| l.contains(name))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        version = field("model version");
        if version > 0 {
            // The epoch bumps before the publish counter (the swap is
            // what queries observe first), so mid-publish the counter may
            // trail the version by the one in-flight publish — never more,
            // the driver publishes serially.
            let publishes = field("publishes applied");
            assert!(
                publishes == version || publishes + 1 == version,
                "publishes {publishes} vs version {version}"
            );
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(version > 0, "the follower never published a model refresh");

    let out = cdim().args(["query", "--addr", &addr, "--op", "topk", "--k", "2"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // The scrape endpoint exposes ingest, serve, and scan series from the
    // one shared registry while the follower runs.
    let response = scrape(&metrics_addr, "/metrics");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap().to_string();
    assert!(body.contains("cdim_ingest_records_total"), "{body}");
    assert!(body.contains("cdim_ingest_lag_bytes"), "{body}");
    assert!(body.contains("cdim_ingest_records_per_sec"), "{body}");
    assert!(body.contains("cdim_serve_publish_seconds"), "{body}");
    assert!(body.contains("cdim_scan_seconds"), "{body}");

    // `cdim stats` surfaces live ingest throughput/lag beside the serve
    // counters — satellite 1's operator view.
    let out = cdim().args(["stats", "--addr", &addr]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("cdim_ingest_records_per_sec"), "{text}");
    assert!(text.contains("cdim_ingest_lag_bytes"), "{text}");
    assert!(text.contains("cdim_ingest_watermark_age_seconds"), "{text}");

    follower.kill().ok();
    follower.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
