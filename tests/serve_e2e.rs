//! End-to-end serving smoke test: train on a datagen preset, persist a
//! snapshot, restore it, serve it over TCP on an ephemeral port, and hit
//! it from four concurrent client threads. Every response must equal the
//! answer computed offline from the same snapshot's `CdSelector` —
//! bit-exact, since client and server share one canonical model state and
//! one canonical evaluation order.

use cdim::prelude::*;
use cdim::serve::server;
use std::sync::Arc;

/// The offline reference: canonical-order telescoped σ_cd from a restored
/// selector (exactly what the service computes on a cache miss).
fn offline_spread(snapshot: &ModelSnapshot, seeds: &[u32]) -> f64 {
    let mut canonical = seeds.to_vec();
    canonical.sort_unstable();
    canonical.dedup();
    let mut sel = snapshot.selector().clone();
    let mut total = 0.0;
    for &s in &canonical {
        total += sel.compute_mg(s);
        sel.update(s);
    }
    total
}

#[test]
fn concurrent_tcp_queries_match_offline_selector() {
    // Train on a generated preset and round-trip the model through disk.
    let ds = cdim::datagen::presets::tiny().generate();
    let model = CdModel::train(&ds.graph, &ds.log, CdModelConfig::default());
    let snapshot = ModelSnapshot::from_store(model.store().clone());

    let dir = std::env::temp_dir().join(format!("cdim_serve_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.snap");
    snapshot.save(&path).unwrap();
    let restored = ModelSnapshot::load(&path).unwrap();
    assert_eq!(restored.to_bytes(), snapshot.to_bytes(), "snapshot must reload bit-identically");

    // Offline answers from the same snapshot state.
    let k = 5usize;
    let offline_selection = restored.selector().clone().select(k);
    assert_eq!(offline_selection.seeds.len(), k);
    let query_sets: Vec<Vec<u32>> = vec![
        offline_selection.seeds.clone(),
        vec![0, 1, 2],
        vec![7, 3],
        vec![4],
        offline_selection.seeds[..2].to_vec(),
    ];
    let expected_spreads: Vec<f64> =
        query_sets.iter().map(|s| offline_spread(&restored, s)).collect();

    // Serve the snapshot on an ephemeral port.
    let service = Arc::new(InfluenceService::new(restored, 64));
    let handle = server::spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Four client threads, each issuing every TopK + Spread query.
    let offline_seeds = offline_selection.seeds.clone();
    let offline_gains = offline_selection.marginal_gains.clone();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let query_sets = query_sets.clone();
            let expected_spreads = expected_spreads.clone();
            let offline_seeds = offline_seeds.clone();
            let offline_gains = offline_gains.clone();
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(addr).unwrap();
                for round in 0..3 {
                    let (seeds, gains) = client.top_k(k as u32).unwrap();
                    assert_eq!(seeds, offline_seeds, "round {round}");
                    for (got, want) in gains.iter().zip(&offline_gains) {
                        assert_eq!(got.to_bits(), want.to_bits(), "round {round}");
                    }
                    for (set, want) in query_sets.iter().zip(&expected_spreads) {
                        let sigma = client.spread(set).unwrap();
                        assert_eq!(
                            sigma.to_bits(),
                            want.to_bits(),
                            "spread({set:?}) = {sigma} vs offline {want}"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // 4 threads × 3 rounds × 6 queries, only 6 distinct cache keys. A key
    // can miss once per thread when all four race through round 0, but
    // every thread's rounds 1–2 hit its own round-0 insertions, so at
    // most 4 × 6 misses and at least 48 hits.
    let stats = service.stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, 4 * 3 * 6);
    assert!(
        stats.cache_misses <= 4 * 6,
        "expected ≤24 misses, got {} (hits {})",
        stats.cache_misses,
        stats.cache_hits
    );
    assert!(stats.cache_hits >= 48, "expected ≥48 hits, got {}", stats.cache_hits);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_under_load_never_drops_a_query() {
    let ds = cdim::datagen::presets::tiny().generate();
    let uniform = CdModel::train(
        &ds.graph,
        &ds.log,
        CdModelConfig { policy: PolicyKind::Uniform, lambda: 0.0, ..Default::default() },
    );
    let time_aware = CdModel::train(&ds.graph, &ds.log, CdModelConfig::default());
    let snap_a = ModelSnapshot::from_store(uniform.store().clone());
    let snap_b = ModelSnapshot::from_store(time_aware.store().clone());

    let expect_a = offline_spread(&snap_a, &[0, 1, 2]);
    let expect_b = offline_spread(&snap_b, &[0, 1, 2]);

    let service = Arc::new(InfluenceService::new(snap_a, 64));
    let handle = server::spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let queriers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(addr).unwrap();
                for _ in 0..50 {
                    let sigma = client.spread(&[0, 1, 2]).unwrap();
                    // Every answer is from exactly one published model —
                    // never an error, never a torn in-between value.
                    assert!(
                        sigma.to_bits() == expect_a.to_bits()
                            || sigma.to_bits() == expect_b.to_bits(),
                        "{sigma} matches neither model"
                    );
                }
            })
        })
        .collect();

    // Publish the retrained model mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(2));
    service.publish(snap_b);

    for q in queriers {
        q.join().unwrap();
    }
    // After the swap, new queries answer from the new model.
    let mut client = QueryClient::connect(addr).unwrap();
    let sigma = client.spread(&[0, 1, 2]).unwrap();
    assert_eq!(sigma.to_bits(), expect_b.to_bits());
    assert_eq!(service.stats().snapshots_published, 1);
    handle.shutdown();
}
