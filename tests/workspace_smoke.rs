//! Workspace-wiring smoke test: every `cdim::` re-export path the README
//! and rustdoc examples rely on must resolve, and the facade's
//! train → select → evaluate pipeline must run on a tiny synthetic log.
//!
//! This exists to catch manifest regressions (a crate dropped from the
//! workspace, a renamed re-export) before anything subtler does.

use cdim::prelude::*;

#[test]
fn facade_reexports_resolve_and_pipeline_runs() {
    // Each sub-crate is reachable under its `cdim::` alias.
    let ds: cdim::datagen::Dataset = cdim::datagen::presets::tiny().generate();
    let _: &cdim::graph::DirectedGraph = &ds.graph;
    let _: &cdim::actionlog::ActionLog = &ds.log;

    // Train → select → evaluate through the prelude types.
    let split: TrainTestSplit = train_test_split(&ds.log, 5);
    let model = CdModel::train(&ds.graph, &split.train, CdModelConfig::default());
    let selection: Selection = model.select(3);
    assert_eq!(selection.seeds.len(), 3);

    // σ_cd of the chosen set is at least the CELF objective it reported.
    let sigma = model.spread(&selection.seeds);
    assert!(sigma >= selection.total_gain() - 1e-9, "{sigma} < {}", selection.total_gain());

    // The serving + ingestion layers resolve through the facade too.
    let _: fn(usize) -> cdim::ingest::BatchConfig =
        |n| cdim::ingest::BatchConfig { max_actions: n, ..Default::default() };
    let _: cdim::ingest::FollowConfig = FollowConfig::default();
    let snap = cdim::serve::ModelSnapshot::from_store(model.store().clone());
    assert_eq!(snap.num_users(), ds.graph.num_nodes());

    // Leaf crates re-exported by the facade stay usable directly.
    let mut rng = cdim::util::Rng::seed_from_u64(7);
    let probs: cdim::diffusion::EdgeProbabilities = cdim::learning::uniform(&ds.graph, 0.01);
    assert_eq!(probs.out_view().len(), ds.graph.num_edges());
    let spread = cdim::metrics::rmse(&[(1.0, 1.5)]);
    assert!((spread - 0.5).abs() < 1e-12);
    let _ = rng.f64();
}
