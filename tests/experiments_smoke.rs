//! Every experiment runner completes at smoke scale — protects the whole
//! harness (and thus every table/figure) from bit-rot.

use cdim_bench::{experiments, ExperimentScale};

fn smoke() -> ExperimentScale {
    // Even smaller than `quick`: these must run inside `cargo test`.
    ExperimentScale {
        dataset_divisor: 16,
        mc_simulations: 20,
        k: 5,
        max_test_traces: 20,
        threads: 2,
    }
}

#[test]
fn table_experiments_run() {
    assert!(experiments::run("table1", smoke()));
    assert!(experiments::run("table2", smoke()));
    assert!(experiments::run("table4", smoke()));
}

#[test]
fn accuracy_figures_run() {
    assert!(experiments::run("fig2", smoke()));
    assert!(experiments::run("fig3", smoke()));
    assert!(experiments::run("fig4", smoke()));
}

#[test]
fn selection_figures_run() {
    assert!(experiments::run("fig5", smoke()));
    assert!(experiments::run("fig6", smoke()));
    assert!(experiments::run("fig7", smoke()));
}

#[test]
fn scalability_figures_run() {
    assert!(experiments::run("fig8", smoke()));
    assert!(experiments::run("fig9", smoke()));
}

#[test]
fn ablations_run() {
    assert!(experiments::run("ablate-credit", smoke()));
    assert!(experiments::run("ablate-celf", smoke()));
    assert!(experiments::run("ablate-mg", smoke()));
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(!experiments::run("not-an-experiment", smoke()));
}
