//! Every experiment runner completes at smoke scale — protects the whole
//! harness (and thus every table/figure) from bit-rot.

use cdim_bench::{experiments, ExperimentScale};

fn smoke() -> ExperimentScale {
    // Even smaller than `quick`: these must run inside `cargo test`.
    ExperimentScale {
        dataset_divisor: 16,
        mc_simulations: 20,
        k: 5,
        max_test_traces: 20,
        threads: 2,
    }
}

#[test]
fn table_experiments_run() {
    assert!(experiments::run("table1", smoke()));
    assert!(experiments::run("table2", smoke()));
    assert!(experiments::run("table4", smoke()));
}

#[test]
fn accuracy_figures_run() {
    assert!(experiments::run("fig2", smoke()));
    assert!(experiments::run("fig3", smoke()));
    assert!(experiments::run("fig4", smoke()));
}

#[test]
fn selection_figures_run() {
    assert!(experiments::run("fig5", smoke()));
    assert!(experiments::run("fig6", smoke()));
    assert!(experiments::run("fig7", smoke()));
}

#[test]
fn scalability_figures_run() {
    assert!(experiments::run("fig8", smoke()));
    assert!(experiments::run("fig9", smoke()));
}

#[test]
fn bench_scan_sweep_runs_and_records_json() {
    // Explicit output path — no process-global env mutation, so this is
    // safe alongside the other tests in this binary running in parallel.
    let path = std::env::temp_dir().join(format!("cdim_bench_scan_{}.json", std::process::id()));
    cdim_bench::experiments::scan_scaling::run_with_output(smoke(), &path);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"experiment\": \"bench-scan\""), "{text}");
    for threads in [1, 2, 4, 8] {
        assert!(text.contains(&format!("\"threads\": {threads}")), "{text}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_incremental_sweep_runs_and_records_json() {
    let path =
        std::env::temp_dir().join(format!("cdim_bench_incremental_{}.json", std::process::id()));
    // Extra-small dataset: the sweep rescans the full log once per delta
    // fraction, which would dominate this binary's runtime at divisor 16.
    let mut scale = smoke();
    scale.dataset_divisor = 64;
    cdim_bench::experiments::incremental::run_with_output(scale, &path);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"experiment\": \"bench-incremental\""), "{text}");
    assert!(text.contains("\"delta_fraction\": 0.02"), "{text}");
    assert!(text.contains("\"apply_secs\""), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn ablations_run() {
    assert!(experiments::run("ablate-credit", smoke()));
    assert!(experiments::run("ablate-celf", smoke()));
    assert!(experiments::run("ablate-mg", smoke()));
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(!experiments::run("not-an-experiment", smoke()));
}
