//! The full online pipeline in one file: a producer appends to a live
//! action log while a follower tails it, cuts micro-batched deltas,
//! retrains incrementally, and hot-swaps the served model — then the
//! result is proven byte-identical to one-shot offline training.
//!
//! Paper artifact: the model is *data-based* (§4) — influence is learned
//! from the action log itself, so a growing log is a growing model. The
//! ingest subsystem operationalizes that: freshness priced at the delta,
//! with offline-equivalent results.
//!
//! ```text
//! cargo run --release --example live_ingest
//! ```

use cdim::ingest::{BatchConfig, FollowConfig, IngestDriver};
use cdim::prelude::*;
use cdim::serve::{ModelSnapshot, Query};
use std::io::Write as _;
use std::time::Duration;

fn main() {
    let dir = std::env::temp_dir().join(format!("cdim_live_ingest_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("actions.tsv");
    let ckpt_path = dir.join("model.ckpt");

    // The "production" data: a synthetic dataset whose action log we
    // will replay as a live stream, in byte chunks that tear records.
    let ds = cdim::datagen::presets::tiny().generate();
    let mut serialized = Vec::new();
    cdim::actionlog::storage::write_action_log(&ds.log, &mut serialized).unwrap();
    println!(
        "dataset: {} users, {} actions, {} tuples ({} bytes serialized)",
        ds.graph.num_nodes(),
        ds.log.num_actions(),
        ds.log.num_tuples(),
        serialized.len()
    );

    // The follower/driver: empty model, batches of 8 actions.
    let mut driver = IngestDriver::open(
        ds.graph.clone(),
        CreditPolicy::Uniform,
        &log_path,
        &ckpt_path,
        FollowConfig {
            batch: BatchConfig { max_actions: 8, max_age: Duration::from_millis(200) },
            lambda: Some(0.001),
            ..Default::default()
        },
    )
    .unwrap();
    let service = driver.service().clone();

    // Producer and follower, interleaved: a third of the bytes at a
    // time, a step after each append. Queries work the whole way
    // through — the hot-swap never blocks them.
    for (i, chunk) in serialized.chunks(serialized.len() / 3 + 1).enumerate() {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&log_path).unwrap();
        f.write_all(chunk).unwrap();
        let report = driver.step().unwrap();
        let answer = service.query(&Query::TopKSeeds { budget: 3 }).unwrap();
        println!("after chunk {i}: {report}; top-3 now {answer:?}");
    }
    driver.finish().unwrap();

    // The proof: the streamed model's bytes equal one-shot training.
    let offline = ModelSnapshot::build(
        &ds.graph,
        &cdim::actionlog::storage::load_action_log(&log_path, ds.graph.num_nodes()).unwrap(),
        CdModelConfig { policy: PolicyKind::Uniform, lambda: 0.001, ..Default::default() },
    )
    .unwrap();
    assert_eq!(driver.snapshot().to_bytes(), offline.to_bytes());
    println!(
        "streamed model == offline model, byte for byte ({} actions, v{})",
        driver.snapshot().num_actions(),
        service.model_version()
    );
    let stats = service.stats();
    println!(
        "service counters: {} queries, {} hits / {} misses, {} publishes",
        stats.queries, stats.cache_hits, stats.cache_misses, stats.snapshots_published
    );
    std::fs::remove_dir_all(&dir).ok();
}
