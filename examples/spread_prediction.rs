//! Spread prediction on held-out propagation traces.
//!
//! For every test trace, each model predicts how far the trace's
//! initiators will spread; the truth is the trace's actual size. This is
//! the paper's §3/§6 accuracy methodology (Figs 2–4) in example form,
//! comparing the CD model with EM-learned IC and the weighted-cascade
//! assignment.
//!
//! Paper artifact: Figs 2–4 (spread-prediction accuracy of CD vs IC-EM
//! and weighted cascade on held-out traces; §3/§6 methodology).
//!
//! ```text
//! cargo run --release --example spread_prediction
//! ```

use cdim::learning::assign;
use cdim::metrics::{capture_ratio_at, rmse, Table};
use cdim::prelude::*;

fn main() {
    let dataset = cdim::datagen::presets::flixster_small().scaled_down(2).generate();
    let split = train_test_split(&dataset.log, 5);
    let graph = &dataset.graph;

    // Competitors.
    let model = CdModel::train(graph, &split.train, CdModelConfig::default());
    let em = EmLearner::new(graph, &split.train).learn(EmConfig::default()).0;
    let wc = assign::weighted_cascade(graph);
    let mc = McConfig { simulations: 200, threads: 0, base_seed: 1 };

    // Collect (actual, predicted) pairs over the test traces.
    let mut pairs_cd = Vec::new();
    let mut pairs_em = Vec::new();
    let mut pairs_wc = Vec::new();
    for a in split.test.actions().take(200) {
        let dag = PropagationDag::build(&split.test, graph, a);
        let initiators = dag.initiators();
        let actual = dag.len() as f64;
        pairs_cd.push((actual, model.spread(&initiators)));
        let est_em = MonteCarloEstimator::new(IcModel::new(graph, &em), mc);
        pairs_em.push((actual, est_em.spread(&initiators)));
        let est_wc = MonteCarloEstimator::new(IcModel::new(graph, &wc), mc);
        pairs_wc.push((actual, est_wc.spread(&initiators)));
    }

    let mut table = Table::new(["model", "RMSE", "captured ≤5", "captured ≤20"]);
    for (name, pairs) in [("CD", &pairs_cd), ("IC+EM", &pairs_em), ("IC+WC", &pairs_wc)] {
        table.row([
            name.to_string(),
            format!("{:.1}", rmse(pairs)),
            format!("{:.0}%", 100.0 * capture_ratio_at(pairs, 5.0)),
            format!("{:.0}%", 100.0 * capture_ratio_at(pairs, 20.0)),
        ]);
    }
    println!("{} test traces\n", pairs_cd.len());
    println!("{table}");

    println!("a few individual predictions (actual vs CD vs IC+EM):");
    for ((a, cd), (_, em)) in pairs_cd.iter().zip(&pairs_em).take(8) {
        println!("  actual {a:>6.0}   cd {cd:>8.1}   ic+em {em:>8.1}");
    }
}
