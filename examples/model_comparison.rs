//! Who do the models think the influencers are — and how long does it
//! take them to decide?
//!
//! Selects seed sets under IC (EM probabilities, MC+CELF), LT (learned
//! weights, MC+CELF) and CD, reporting pairwise overlaps (Fig 5's shape)
//! and wall-clock time (Fig 7's shape).
//!
//! Paper artifact: Fig 5 (seed-set overlap between models) and Fig 7
//! (runtime comparison; CD vs simulation-based selection).
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use cdim::metrics::{intersection_matrix, Table};
use cdim::prelude::*;
use cdim::util::Timer;

fn main() {
    let dataset = cdim::datagen::presets::flixster_small().scaled_down(4).generate();
    let split = train_test_split(&dataset.log, 5);
    let graph = &dataset.graph;
    let k = 10;
    let mc = McConfig { simulations: 150, threads: 0, base_seed: 3 };

    // IC with EM-learned probabilities.
    let t = Timer::start();
    let em = EmLearner::new(graph, &split.train).learn(EmConfig::default()).0;
    let ic_est = MonteCarloEstimator::new(IcModel::new(graph, &em), mc);
    let ic_seeds = celf_select(&ic_est, k).seeds;
    let ic_time = t.secs();

    // LT with learned weights.
    let t = Timer::start();
    let weights = learn_lt_weights(graph, &split.train);
    let lt_est = MonteCarloEstimator::new(LtModel::new(graph, &weights), mc);
    let lt_seeds = celf_select(&lt_est, k).seeds;
    let lt_time = t.secs();

    // CD (scan + Algorithm 3).
    let t = Timer::start();
    let model = CdModel::train(graph, &split.train, CdModelConfig::default());
    let cd_seeds = model.select(k).seeds;
    let cd_time = t.secs();

    let sets = vec![("IC", ic_seeds.clone()), ("LT", lt_seeds.clone()), ("CD", cd_seeds.clone())];
    let matrix = intersection_matrix(&sets);
    println!("seed-set overlaps (k = {k}):\n");
    let mut table = Table::new(["", "IC", "LT", "CD", "time (s)"]);
    let times = [ic_time, lt_time, cd_time];
    for (i, (name, _)) in sets.iter().enumerate() {
        table.row([
            name.to_string(),
            matrix[i][0].to_string(),
            matrix[i][1].to_string(),
            matrix[i][2].to_string(),
            format!("{:.2}", times[i]),
        ]);
    }
    println!("{table}");

    println!("spread of each set under the CD model (the best-calibrated predictor):");
    for (name, seeds) in &sets {
        println!("  {name}: {:.1}", model.spread(seeds));
    }
    println!(
        "\nnote: with the paper's 10,000 MC simulations instead of {}, the IC/LT\n\
         rows take hours — that asymmetry is Fig 7's headline result.",
        mc.simulations
    );
}
