//! Quickstart: train the credit-distribution model on an action log and
//! pick seeds.
//!
//! Paper artifact: the end-to-end CD pipeline of §4–5 — the Algorithm-2
//! log scan, CELF with Theorem-3 marginal gains (Algorithm 3), and σ_cd
//! (Eq 8) as a spread predictor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdim::prelude::*;

fn main() {
    // A synthetic community with a planted influence process. With real
    // data you would load a graph and an action log instead:
    //   let graph = cdim::actionlog::storage::load_graph(path)?;
    //   let log   = cdim::actionlog::storage::load_action_log(path, n)?;
    let dataset = cdim::datagen::presets::flixster_small().scaled_down(4).generate();
    println!(
        "dataset: {} users, {} social edges, {} propagation traces, {} tuples",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.log.num_actions(),
        dataset.log.num_tuples()
    );

    // Hold out 20% of the traces for honest evaluation.
    let split = train_test_split(&dataset.log, 5);

    // Train: learns τ (propagation delays) and infl (user influenceability),
    // then scans the log once into the credit store (Algorithm 2).
    let model = CdModel::train(
        &dataset.graph,
        &split.train,
        CdModelConfig { policy: PolicyKind::TimeAware, lambda: 0.001, ..Default::default() },
    );
    println!(
        "credit store: {} entries, ~{} of memory",
        model.store().total_entries(),
        cdim::util::mem::fmt_bytes(model.store_memory_bytes())
    );

    // Influence maximization (Algorithm 3: CELF over Theorem-3 gains).
    let k = 10;
    let selection = model.select(k);
    println!("\ntop-{k} seeds (marginal gain in expected activations):");
    for (seed, gain) in selection.seeds.iter().zip(&selection.marginal_gains) {
        println!("  user {seed:>6}  +{gain:.2}");
    }

    // σ_cd is also a spread predictor for *any* seed set.
    let sigma = model.spread(&selection.seeds);
    println!("\npredicted spread of the chosen set: {sigma:.1} users");
    println!(
        "spread of a random set of the same size: {:.1} users",
        model.spread(&random_users(dataset.graph.num_nodes(), k))
    );
}

fn random_users(n: usize, k: usize) -> Vec<u32> {
    let mut rng = Rng::seed_from_u64(42);
    rng.sample_indices(n, k).into_iter().map(|i| i as u32).collect()
}
