//! Scalability of the one-pass scan (Fig 8 in example form).
//!
//! Scans growing slices of a large action log and reports throughput,
//! credit-store size and seed-selection time.
//!
//! Paper artifact: Fig 8 (runtime and memory vs action-log size; the
//! one-pass scan of Algorithm 2 scales linearly in the log).
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use cdim::metrics::Table;
use cdim::prelude::*;
use cdim::util::mem::fmt_bytes;
use cdim::util::Timer;

fn main() {
    let dataset = cdim::datagen::presets::flixster_large().scaled_down(4).generate();
    println!(
        "dataset: {} users, {} edges, {} tuples total — scanning on {} cores",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.log.num_tuples(),
        Parallelism::auto().effective()
    );

    let policy = CreditPolicy::time_aware(&dataset.graph, &dataset.log);
    let mut table =
        Table::new(["#tuples", "scan (s)", "tuples/s", "UC entries", "memory", "select k=25 (s)"]);
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let budget = (dataset.log.num_tuples() as f64 * fraction) as usize;
        let log = dataset.log.take_tuples(budget);

        let t = Timer::start();
        let store = scan(&dataset.graph, &log, &policy, 0.001).unwrap();
        let scan_s = t.secs();
        let entries = store.total_entries();
        let bytes = store.memory_bytes();

        let t = Timer::start();
        let selection = CdSelector::new(store).select(25);
        let select_s = t.secs();
        assert_eq!(selection.seeds.len(), 25);

        table.row([
            log.num_tuples().to_string(),
            format!("{scan_s:.2}"),
            format!("{:.0}", log.num_tuples() as f64 / scan_s.max(1e-9)),
            entries.to_string(),
            fmt_bytes(bytes),
            format!("{select_s:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "the scan is a single pass over the log — time and memory grow ~linearly\n\
         with the tuple count, and selection cost is independent of graph size."
    );

    // Credit assignment is independent across actions, so the scan shards
    // them over worker threads with bit-identical output for every thread
    // count; the budget is purely a speed knob.
    let mut table = Table::new(["threads", "scan (s)", "speedup"]);
    let mut base = 0.0;
    for threads in [1usize, 2, 4] {
        let t = Timer::start();
        let store =
            scan_with(&dataset.graph, &dataset.log, &policy, 0.001, Parallelism::fixed(threads))
                .unwrap();
        let secs = t.secs();
        assert!(store.total_entries() > 0);
        if threads == 1 {
            base = secs;
        }
        table.row([
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}x", base / secs.max(1e-9)),
        ]);
    }
    println!("{table}");
}
