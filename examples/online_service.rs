//! The train-once / query-many serving loop in one file.
//!
//! Trains the CD model on a synthetic preset, persists it as a snapshot,
//! restores it into an [`cdim::serve::InfluenceService`], serves it over
//! TCP on an ephemeral port, and queries it from a few concurrent client
//! threads — then hot-swaps a retrained model with zero downtime.
//!
//! Paper artifact: §5's observation that selection and prediction read
//! only the credit store, which is what makes the CD model servable
//! without the log or simulations.
//!
//! ```text
//! cargo run --release --example online_service
//! ```

use cdim::prelude::*;
use cdim::serve::server;
use std::sync::Arc;

fn main() {
    // Train and snapshot.
    let ds = cdim::datagen::presets::flixster_small().scaled_down(8).generate();
    let model = CdModel::train(&ds.graph, &ds.log, CdModelConfig::default());
    let snapshot = ModelSnapshot::from_store(model.store().clone());
    let path = std::env::temp_dir().join("cdim_online_service.snap");
    snapshot.save(&path).expect("writing snapshot");
    println!(
        "snapshot: {} users, {} actions → {}",
        snapshot.num_users(),
        snapshot.num_actions(),
        path.display()
    );

    // Restore and serve.
    let restored = ModelSnapshot::load(&path).expect("reading snapshot");
    let service = Arc::new(InfluenceService::new(restored, 1024));
    let handle = server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("binding");
    let addr = handle.addr();
    println!("serving on {addr}");

    // Concurrent clients: top-k, then spreads of prefixes of the answer.
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("connecting");
                let (seeds, gains) = client.top_k(10).expect("top-k");
                let mut rows = Vec::new();
                for take in [1usize, 5, 10] {
                    let sigma = client.spread(&seeds[..take]).expect("spread");
                    rows.push((take, sigma));
                }
                (worker, seeds, gains, rows)
            })
        })
        .collect();
    for w in workers {
        let (worker, seeds, gains, rows) = w.join().unwrap();
        println!(
            "client {worker}: top seed {} (gain {:.2}); spreads {:?}",
            seeds[0],
            gains[0],
            rows.iter().map(|(k, s)| format!("k={k}:{s:.1}")).collect::<Vec<_>>()
        );
    }

    // Zero-downtime retrain: publish a uniform-policy model.
    let retrained = CdModel::train(
        &ds.graph,
        &ds.log,
        CdModelConfig { policy: PolicyKind::Uniform, lambda: 0.001, ..Default::default() },
    );
    service.publish(ModelSnapshot::from_store(retrained.store().clone()));
    let mut client = QueryClient::connect(addr).expect("reconnecting");
    let (seeds, _) = client.top_k(3).expect("top-k after swap");
    let stats = service.stats();
    println!(
        "after hot swap: top-3 = {seeds:?} ({} hits / {} misses, {} snapshot published)",
        stats.cache_hits, stats.cache_misses, stats.snapshots_published
    );

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
