//! Viral marketing: how many free samples buy how much adoption?
//!
//! The paper's motivating scenario (§1): a marketer targets k users with
//! free products and wants maximum expected adoption. This example sweeps
//! the budget k and compares the CD seed set against the structural
//! heuristics a marketer might use instead (top degree, PageRank, random).
//!
//! Paper artifact: the §1 motivating scenario and Fig 6 (CD seeds vs
//! HighDegree/PageRank/Random baselines across budgets k).
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use cdim::maxim::{high_degree_seeds, pagerank_seeds, random_seeds};
use cdim::metrics::Table;
use cdim::prelude::*;

fn main() {
    let dataset = cdim::datagen::presets::flixster_small().scaled_down(2).generate();
    let split = train_test_split(&dataset.log, 5);
    let model = CdModel::train(&dataset.graph, &split.train, CdModelConfig::default());

    let budget = 25;
    let cd_seeds = model.select(budget).seeds;
    let degree_seeds = high_degree_seeds(&dataset.graph, budget);
    let pr_seeds = pagerank_seeds(&dataset.graph, budget);
    let rnd_seeds = random_seeds(&dataset.graph, budget, 7);

    println!("expected adoptions by targeting budget (spread under the CD model):\n");
    let mut table = Table::new(["budget k", "CD", "HighDegree", "PageRank", "Random"]);
    for k in [1, 5, 10, 15, 20, 25] {
        table.row([
            k.to_string(),
            format!("{:.1}", model.spread(&cd_seeds[..k])),
            format!("{:.1}", model.spread(&degree_seeds[..k])),
            format!("{:.1}", model.spread(&pr_seeds[..k])),
            format!("{:.1}", model.spread(&rnd_seeds[..k])),
        ]);
    }
    println!("{table}");

    // Marginal value of the next seed: the submodularity curve a marketer
    // uses to choose the budget.
    let sel = model.select(budget);
    println!("diminishing returns (gain of the i-th seed):");
    for (i, gain) in sel.marginal_gains.iter().enumerate().step_by(5) {
        println!("  seed #{:<3} +{gain:.2}", i + 1);
    }
    let halfway = model.spread(&cd_seeds[..budget / 2]);
    let full = model.spread(&cd_seeds);
    println!(
        "\nhalf the budget already buys {:.0}% of the full-budget adoption",
        100.0 * halfway / full
    );
}
